// Filesystem helpers for checkpoint I/O.
//
// Writes are crash-consistent: data goes to a temporary sibling file which is fsynced and
// renamed into place only after a successful flush, so a checkpoint directory never contains
// a half-written file under its final name. The write / fsync / rename paths consult the
// fault injector in fault_fs.h, which is how the crash-consistency tests simulate kills,
// torn writes, and bit rot at exact points in the commit protocol.

#ifndef UCP_SRC_COMMON_FS_H_
#define UCP_SRC_COMMON_FS_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace ucp {

// Retry policy for transient (kUnavailable) I/O failures — a flaky network mount or a
// rate-limited object store. Only kUnavailable is retried: permanent failures (kIoError)
// and corruption (kDataLoss) return immediately, and the crash-consistency fault modes
// (fail-stop, torn write, bit rot) are permanent by design.
struct IoRetryPolicy {
  int max_attempts = 4;                     // total attempts, including the first
  std::chrono::milliseconds base_backoff{1};   // doubles per retry ...
  std::chrono::milliseconds max_backoff{100};  // ... capped here
};

// Process-global; read at the start of each retried operation. Tests shrink the backoff.
void SetIoRetryPolicy(const IoRetryPolicy& policy);
IoRetryPolicy GetIoRetryPolicy();

// Process-global counters for transient-retry activity (same pattern as TensorIoStats).
struct IoRetryStats {
  uint64_t transient_errors = 0;  // kUnavailable results observed across all attempts
  uint64_t retries = 0;           // re-attempts made after a transient error
  uint64_t giveups = 0;           // operations that exhausted max_attempts
};
IoRetryStats GetIoRetryStats();
void ResetIoRetryStats();

// Creates `path` and any missing parents.
Status MakeDirs(const std::string& path);

bool FileExists(const std::string& path);
bool DirExists(const std::string& path);

Result<uint64_t> FileSize(const std::string& path);

// Last-modification time of `path` in whole seconds since the POSIX epoch.
Result<int64_t> FileMtimeSeconds(const std::string& path);

// Atomically replaces `path` with `contents` (tmp file + fsync + rename). Transient
// (kUnavailable) failures are retried per the IoRetryPolicy with capped exponential
// backoff; all other failures return immediately.
Status WriteFileAtomic(const std::string& path, const void* data, size_t size);
Status WriteFileAtomic(const std::string& path, const std::string& contents);

// Batches fsyncs on the current thread. While an instance is in scope, WriteFileAtomic on
// this thread defers the per-file fsync and records the final path; SyncAll() then flushes
// every recorded file in one pass (each fsync still routes through the fault injector).
// Durability placement, not elision: the checkpoint flusher calls SyncAll() before the
// commit rename, so nothing the commit protocol trusts can be un-flushed. Used by the async
// checkpoint engine, where moving fsyncs out of the per-shard write path is most of the
// flush-throughput win. Nestable; destruction without SyncAll() simply drops the batch
// (the caller aborted — its staging dir is untrusted debris anyway).
class ScopedFsyncBatch {
 public:
  ScopedFsyncBatch();
  ~ScopedFsyncBatch();
  ScopedFsyncBatch(const ScopedFsyncBatch&) = delete;
  ScopedFsyncBatch& operator=(const ScopedFsyncBatch&) = delete;

  // Fsyncs every file written under the batch since the last SyncAll. Stops at the first
  // failure (the commit must not proceed past an unflushed shard).
  Status SyncAll();

  size_t pending() const { return paths_.size(); }

 private:
  friend Status WriteFileAtomic(const std::string& path, const void* data, size_t size);
  void Record(const std::string& path) { paths_.push_back(path); }

  std::vector<std::string> paths_;
  ScopedFsyncBatch* previous_;  // restores the outer batch on destruction
};

// Renames `from` to `to` (same filesystem; `to` must not exist for directories). This is
// the commit point of the checkpoint staging protocol, so it routes through the fault
// injector like the file writes do.
Status RenamePath(const std::string& from, const std::string& to);

// Read-only positional access to one file (pread; no shared cursor). The sliced checkpoint
// load path uses this to fetch byte ranges of tensor files without reading whole files.
// Movable, not copyable; the descriptor closes on destruction. A moved-from file is closed.
// Concurrent ReadAt calls on one instance are safe at the kernel level (pread is atomic in
// the offset), but the checkpoint readers give each worker its own instance anyway.
class RandomAccessFile {
 public:
  static Result<RandomAccessFile> Open(const std::string& path);

  RandomAccessFile() = default;
  ~RandomAccessFile();
  RandomAccessFile(RandomAccessFile&& other) noexcept;
  RandomAccessFile& operator=(RandomAccessFile&& other) noexcept;
  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  bool open() const { return fd_ >= 0; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  // Reads exactly `size` bytes at `offset` into `out`; kDataLoss on short reads (the caller
  // asked for bytes the file does not have — a truncation symptom, not an I/O hiccup).
  Status ReadAt(uint64_t offset, void* out, size_t size) const;

 private:
  RandomAccessFile(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

// Abstract positional byte reader: what the checkpoint file readers actually need from a
// file. Implemented by FileByteSource below (pread on a local file) and by the checkpoint
// store's remote backend (each ReadAt becomes a READ_RANGE request to ucp_serverd), so
// TensorFileView/BundleFileView serve local and remote files through one code path.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  virtual uint64_t size() const = 0;
  // Stable identifier for error messages and cache keys (a path or a store URL).
  virtual const std::string& name() const = 0;
  // Reads exactly `size` bytes at `offset` into `out`; kDataLoss on short reads.
  virtual Status ReadAt(uint64_t offset, void* out, size_t size) = 0;
};

// ByteSource over a local file.
class FileByteSource final : public ByteSource {
 public:
  static Result<std::unique_ptr<ByteSource>> Open(const std::string& path);
  explicit FileByteSource(RandomAccessFile file) : file_(std::move(file)) {}

  uint64_t size() const override { return file_.size(); }
  const std::string& name() const override { return file_.path(); }
  Status ReadAt(uint64_t offset, void* out, size_t size) override {
    return file_.ReadAt(offset, out, size);
  }

 private:
  RandomAccessFile file_;
};

Result<std::string> ReadFileToString(const std::string& path);

// Names (not full paths) of directory entries, sorted. Fails if `path` is not a directory.
Result<std::vector<std::string>> ListDir(const std::string& path);

// Recursively removes `path` if it exists; no-op (OK) when absent.
Status RemoveAll(const std::string& path);

// Joins with exactly one '/' between parts.
std::string PathJoin(const std::string& a, const std::string& b);

// Creates a fresh unique directory under the system temp dir with the given prefix.
Result<std::string> MakeTempDir(const std::string& prefix);

}  // namespace ucp

#endif  // UCP_SRC_COMMON_FS_H_
