#include "src/common/bytes.h"

namespace ucp {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(s.data(), s.size());
}

void ByteWriter::PutBytes(const void* data, size_t size) {
  const auto* p = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), p, p + size);
}

Result<uint8_t> ByteReader::GetU8() {
  if (remaining() < 1) {
    return DataLossError("byte stream truncated (u8)");
  }
  return data_[pos_++];
}

Result<uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) {
    return DataLossError("byte stream truncated (u32)");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) {
    return DataLossError("byte stream truncated (u64)");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<int64_t> ByteReader::GetI64() {
  UCP_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<float> ByteReader::GetF32() {
  UCP_ASSIGN_OR_RETURN(uint32_t bits, GetU32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> ByteReader::GetF64() {
  UCP_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::GetString() {
  UCP_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  if (remaining() < len) {
    return DataLossError("byte stream truncated (string of length " + std::to_string(len) + ")");
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Status ByteReader::GetBytes(void* out, size_t size) {
  if (remaining() < size) {
    return DataLossError("byte stream truncated (bytes of length " + std::to_string(size) + ")");
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return OkStatus();
}

}  // namespace ucp
