#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace ucp {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with star backtracking; O(|pattern| * |text|) worst case.
  size_t p = 0;
  size_t t = 0;
  size_t star = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

std::string ZeroPad(int value, int width) {
  std::string digits = std::to_string(value);
  if (static_cast<int>(digits.size()) < width) {
    digits.insert(digits.begin(), width - digits.size(), '0');
  }
  return digits;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace ucp
