// Deterministic filesystem fault injection (test-only).
//
// The write / fsync / rename paths in fs.cc consult this process-global injector on every
// operation. Disarmed (the default) the check is a single relaxed atomic load, so production
// code paths pay nothing. A test arms one FaultPlan; the plan fires exactly once — on the
// nth operation of the selected kind whose path contains `path_substr` — and then stays
// spent until DisarmFaults(). Three failure modes cover the crash-consistency matrix:
//
//   kFailStop  — the operation returns kIoError without completing, modelling a process
//                killed at that point (a failed rename leaves the staging name behind, as a
//                real crash would).
//   kTornWrite — only a seed-determined prefix of the data reaches the *final* path and the
//                operation reports success: the post-crash state of a write whose rename was
//                journaled but whose data blocks never fully hit the platter.
//   kBitRot    — the write completes, then one seed-determined bit of the file is flipped:
//                silent media corruption, detectable only by checksums.
//   kTransient — the operation returns kUnavailable for `fail_count` consecutive matching
//                attempts starting at the nth, then succeeds: a flaky NFS mount or
//                rate-limited object store. Unlike the permanent modes, callers are
//                expected to survive this via retry-with-backoff (see fs.h IoRetryPolicy).
//
// All state is guarded for concurrent use from the converter thread pool and the
// multi-threaded rank simulator.

#ifndef UCP_SRC_COMMON_FAULT_FS_H_
#define UCP_SRC_COMMON_FAULT_FS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ucp {

// kRead hooks ReadFileToString / RandomAccessFile::Open: only kFailStop and kTransient
// make sense there (a torn or bit-rotted *read* is modelled by injecting the write).
enum class FsOp { kWrite = 0, kFsync = 1, kRename = 2, kRead = 3 };

struct FaultPlan {
  enum class Kind { kFailStop, kTornWrite, kBitRot, kTransient };
  Kind kind = Kind::kFailStop;
  FsOp op = FsOp::kWrite;
  int nth = 1;              // fire on the nth matching operation (1-based)
  std::string path_substr;  // only operations whose path contains this match; empty = all
  uint64_t seed = 0;        // determinism source for the torn length / flipped bit
  int fail_count = 1;       // kTransient only: consecutive matching attempts that fail
};

// Arms `plan` (replacing any armed plan) and resets counters.
void ArmFault(const FaultPlan& plan);

// Disarms and resets all counters.
void DisarmFaults();

// True once the armed plan has fired.
bool FaultFired();

// Operations matching the armed plan's (op, path_substr) filter observed since ArmFault.
// Lets tests size an injection matrix ("how many writes does one save perform?").
int FaultOpsSeen();

// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultPlan& plan) { ArmFault(plan); }
  ~ScopedFault() { DisarmFaults(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

// ---- I/O attribution audit ---------------------------------------------------------------
//
// The multi-job soak harness proves store isolation ("job A never touches job B's files")
// by accounting rather than trust: while an audit is active, every hooked fs operation is
// attributed to (a) the calling thread's declared context and (b) the first bucket whose
// substring list matches the operation's path. An operation whose path belongs to bucket B
// while the thread declares a different, non-empty context C != B is recorded as a
// violation. Disarmed (the default) the hook is a single relaxed atomic load.

struct IoAuditBucket {
  std::string name;                       // e.g. a job id
  std::vector<std::string> path_substrs;  // the path matches if it contains any of these
};

struct IoAuditViolation {
  std::string thread_context;  // what the thread claimed to be working on
  std::string bucket;          // whose files it actually touched
  FsOp op = FsOp::kWrite;
  std::string path;
  std::string ToString() const;
};

struct IoAuditReport {
  std::map<std::string, int64_t> ops_per_bucket;  // hooked ops matched, by bucket name
  int64_t unmatched_ops = 0;                      // hooked ops matching no bucket
  std::vector<IoAuditViolation> violations;
};

// Sticky variant: tags the calling thread until overwritten (for threads whose lifetime
// the caller doesn't control, e.g. a checkpoint engine's flusher via pre_flush_hook).
void SetThreadIoAuditContext(const std::string& context);

// Declares the calling thread's audit context (typically the job id its rank works for)
// for the lifetime of the object. Nesting restores the previous context on destruction.
class ScopedIoAuditContext {
 public:
  explicit ScopedIoAuditContext(std::string context);
  ~ScopedIoAuditContext();
  ScopedIoAuditContext(const ScopedIoAuditContext&) = delete;
  ScopedIoAuditContext& operator=(const ScopedIoAuditContext&) = delete;

 private:
  std::string previous_;
};

// Process-global audit; at most one active at a time (a second construction aborts).
class ScopedIoAudit {
 public:
  explicit ScopedIoAudit(std::vector<IoAuditBucket> buckets);
  ~ScopedIoAudit();
  ScopedIoAudit(const ScopedIoAudit&) = delete;
  ScopedIoAudit& operator=(const ScopedIoAudit&) = delete;

  // Snapshot of the counts and violations accumulated so far.
  IoAuditReport Report() const;
};

namespace fault_internal {

// What fs.cc should do for one hooked operation. At most one flag is set.
struct FaultAction {
  bool fail = false;       // abort the operation with kIoError
  bool torn = false;       // persist only `torn_bytes` bytes directly under the final name
  bool bitrot = false;     // complete the operation, then flip `bitrot_bit` of the file
  bool transient = false;  // abort the operation with kUnavailable (retry will succeed)
  uint64_t torn_bytes = 0;
  uint64_t bitrot_bit = 0;  // absolute bit index, reduced mod file size by the caller
};

// Consulted by fs.cc on every hooked operation. Counts matching operations and returns the
// armed action when the count reaches the plan's nth. Cheap when disarmed.
FaultAction CheckFault(FsOp op, const std::string& path);

// Audit hook, called by fs.cc alongside CheckFault. Cheap when no audit is active.
void NoteFsOp(FsOp op, const std::string& path);

}  // namespace fault_internal

}  // namespace ucp

#endif  // UCP_SRC_COMMON_FAULT_FS_H_
