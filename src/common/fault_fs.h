// Deterministic filesystem fault injection (test-only).
//
// The write / fsync / rename paths in fs.cc consult this process-global injector on every
// operation. Disarmed (the default) the check is a single relaxed atomic load, so production
// code paths pay nothing. A test arms one FaultPlan; the plan fires exactly once — on the
// nth operation of the selected kind whose path contains `path_substr` — and then stays
// spent until DisarmFaults(). Three failure modes cover the crash-consistency matrix:
//
//   kFailStop  — the operation returns kIoError without completing, modelling a process
//                killed at that point (a failed rename leaves the staging name behind, as a
//                real crash would).
//   kTornWrite — only a seed-determined prefix of the data reaches the *final* path and the
//                operation reports success: the post-crash state of a write whose rename was
//                journaled but whose data blocks never fully hit the platter.
//   kBitRot    — the write completes, then one seed-determined bit of the file is flipped:
//                silent media corruption, detectable only by checksums.
//   kTransient — the operation returns kUnavailable for `fail_count` consecutive matching
//                attempts starting at the nth, then succeeds: a flaky NFS mount or
//                rate-limited object store. Unlike the permanent modes, callers are
//                expected to survive this via retry-with-backoff (see fs.h IoRetryPolicy).
//
// All state is guarded for concurrent use from the converter thread pool and the
// multi-threaded rank simulator.

#ifndef UCP_SRC_COMMON_FAULT_FS_H_
#define UCP_SRC_COMMON_FAULT_FS_H_

#include <cstdint>
#include <string>

namespace ucp {

enum class FsOp { kWrite = 0, kFsync = 1, kRename = 2 };

struct FaultPlan {
  enum class Kind { kFailStop, kTornWrite, kBitRot, kTransient };
  Kind kind = Kind::kFailStop;
  FsOp op = FsOp::kWrite;
  int nth = 1;              // fire on the nth matching operation (1-based)
  std::string path_substr;  // only operations whose path contains this match; empty = all
  uint64_t seed = 0;        // determinism source for the torn length / flipped bit
  int fail_count = 1;       // kTransient only: consecutive matching attempts that fail
};

// Arms `plan` (replacing any armed plan) and resets counters.
void ArmFault(const FaultPlan& plan);

// Disarms and resets all counters.
void DisarmFaults();

// True once the armed plan has fired.
bool FaultFired();

// Operations matching the armed plan's (op, path_substr) filter observed since ArmFault.
// Lets tests size an injection matrix ("how many writes does one save perform?").
int FaultOpsSeen();

// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedFault {
 public:
  explicit ScopedFault(const FaultPlan& plan) { ArmFault(plan); }
  ~ScopedFault() { DisarmFaults(); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;
};

namespace fault_internal {

// What fs.cc should do for one hooked operation. At most one flag is set.
struct FaultAction {
  bool fail = false;       // abort the operation with kIoError
  bool torn = false;       // persist only `torn_bytes` bytes directly under the final name
  bool bitrot = false;     // complete the operation, then flip `bitrot_bit` of the file
  bool transient = false;  // abort the operation with kUnavailable (retry will succeed)
  uint64_t torn_bytes = 0;
  uint64_t bitrot_bit = 0;  // absolute bit index, reduced mod file size by the caller
};

// Consulted by fs.cc on every hooked operation. Counts matching operations and returns the
// armed action when the count reaches the plan's nth. Cheap when disarmed.
FaultAction CheckFault(FsOp op, const std::string& path);

}  // namespace fault_internal

}  // namespace ucp

#endif  // UCP_SRC_COMMON_FAULT_FS_H_
