#include "src/common/thread_pool.h"

#include <atomic>

#include "src/common/status.h"

namespace ucp {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    UCP_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) {
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (threads_.empty() || n <= 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  // Shared index dispenser: workers pull the next index until exhausted. Good load balance
  // for heterogeneous task sizes (parameters vary wildly in size).
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t workers = std::min(threads_.size(), n);
  for (size_t w = 0; w < workers; ++w) {
    Submit([next, n, &fn] {
      for (size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) {
        work_done_.notify_all();
      }
    }
  }
}

}  // namespace ucp
