#include "src/common/lz.h"

#include <cstring>

namespace ucp {
namespace {

// Stream grammar (LZ4-block-style):
//   sequence := token [lit-ext...] literals [offset_lo offset_hi [match-ext...]]
//   token    := (literal_len:4 | match_len_minus_4:4); nibble 15 means "read 255-run
//               extension bytes and sum them in".
// The final sequence of a stream carries literals only (no offset/match), signalled by
// simply ending after its literals.
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t HashQuad(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Emits a nibble-extended length: `base` already folded into the token by the caller.
void PutLengthExt(std::vector<uint8_t>* out, size_t len) {
  while (len >= 255) {
    out->push_back(255);
    len -= 255;
  }
  out->push_back(static_cast<uint8_t>(len));
}

void EmitSequence(std::vector<uint8_t>* out, const uint8_t* lit, size_t lit_len,
                  size_t offset, size_t match_len) {
  const uint8_t lit_nibble = lit_len >= 15 ? 15 : static_cast<uint8_t>(lit_len);
  uint8_t match_nibble = 0;
  if (match_len > 0) {
    const size_t m = match_len - kMinMatch;
    match_nibble = m >= 15 ? 15 : static_cast<uint8_t>(m);
  }
  out->push_back(static_cast<uint8_t>(lit_nibble << 4 | match_nibble));
  if (lit_nibble == 15) PutLengthExt(out, lit_len - 15);
  out->insert(out->end(), lit, lit + lit_len);
  if (match_len > 0) {
    out->push_back(static_cast<uint8_t>(offset & 0xff));
    out->push_back(static_cast<uint8_t>(offset >> 8));
    if (match_nibble == 15) PutLengthExt(out, match_len - kMinMatch - 15);
  }
}

}  // namespace

size_t LzCompressBound(size_t raw_size) {
  // Worst case is one all-literal sequence: token + ceil(raw/255)+1 extension bytes +
  // literals. 16-byte slack covers the token and rounding.
  return raw_size + raw_size / 255 + 16;
}

LzCompressOutcome LzCompress(const void* data, size_t size, std::vector<uint8_t>* out) {
  const uint8_t* src = static_cast<const uint8_t*>(data);
  out->clear();
  if (size < kMinMatch + 1) return LzCompressOutcome::kIncompressible;
  // Give up as soon as the output crosses the keep threshold: compressed chunks must
  // save at least 1/16 of the raw bytes to be worth the decompress on every read.
  const size_t budget = size - size / 16;
  out->reserve(budget + 64);

  uint32_t table[1u << kHashBits];  // position + 1 of the last quad with this hash; 0 = empty
  std::memset(table, 0, sizeof(table));

  const size_t match_limit = size - kMinMatch;  // last position a match may start at
  size_t pos = 0;
  size_t lit_start = 0;
  while (pos <= match_limit) {
    const uint32_t quad = Load32(src + pos);
    const uint32_t h = HashQuad(quad);
    const uint32_t cand_plus_1 = table[h];
    table[h] = static_cast<uint32_t>(pos + 1);
    if (cand_plus_1 != 0) {
      const size_t cand = cand_plus_1 - 1;
      if (pos - cand <= kMaxOffset && Load32(src + cand) == quad) {
        // Extend the match forward.
        size_t len = kMinMatch;
        while (pos + len < size && src[cand + len] == src[pos + len]) ++len;
        EmitSequence(out, src + lit_start, pos - lit_start, pos - cand, len);
        if (out->size() >= budget) return LzCompressOutcome::kIncompressible;
        // Seed the table sparsely inside the match so later data can still find it.
        const size_t next = pos + len;
        for (size_t p = pos + 1; p + kMinMatch <= next && p <= match_limit; p += 7) {
          table[HashQuad(Load32(src + p))] = static_cast<uint32_t>(p + 1);
        }
        pos = next;
        lit_start = next;
        continue;
      }
    }
    ++pos;
  }
  // Trailing literals-only sequence.
  EmitSequence(out, src + lit_start, size - lit_start, 0, 0);
  if (out->size() >= budget) return LzCompressOutcome::kIncompressible;
  return LzCompressOutcome::kCompressed;
}

Status LzDecompress(const void* in, size_t in_size, void* out, size_t raw_size) {
  const uint8_t* ip = static_cast<const uint8_t*>(in);
  const uint8_t* const iend = ip + in_size;
  uint8_t* op = static_cast<uint8_t*>(out);
  uint8_t* const oend = op + raw_size;

  auto read_ext = [&](size_t base, size_t* len) -> bool {
    *len = base;
    if (base != 15) return true;
    uint8_t b;
    do {
      if (ip >= iend) return false;
      b = *ip++;
      *len += b;
    } while (b == 255);
    return true;
  };

  while (ip < iend) {
    const uint8_t token = *ip++;
    size_t lit_len;
    if (!read_ext(token >> 4, &lit_len)) {
      return DataLossError("lz: truncated literal length");
    }
    if (static_cast<size_t>(iend - ip) < lit_len ||
        static_cast<size_t>(oend - op) < lit_len) {
      return DataLossError("lz: literal run past end of stream");
    }
    std::memcpy(op, ip, lit_len);
    ip += lit_len;
    op += lit_len;
    if (ip == iend) break;  // final literals-only sequence
    if (iend - ip < 2) return DataLossError("lz: truncated match offset");
    const size_t offset = static_cast<size_t>(ip[0]) | static_cast<size_t>(ip[1]) << 8;
    ip += 2;
    size_t match_len;
    if (!read_ext(token & 0xf, &match_len)) {
      return DataLossError("lz: truncated match length");
    }
    match_len += kMinMatch;
    if (offset == 0 || offset > static_cast<size_t>(op - static_cast<uint8_t*>(out))) {
      return DataLossError("lz: match offset before start of output");
    }
    if (static_cast<size_t>(oend - op) < match_len) {
      return DataLossError("lz: match run past declared raw size");
    }
    // Overlapping copies are the point (offset < match_len repeats a pattern), so copy
    // byte-wise.
    const uint8_t* mp = op - offset;
    for (size_t i = 0; i < match_len; ++i) op[i] = mp[i];
    op += match_len;
  }
  if (op != oend) return DataLossError("lz: stream ended short of declared raw size");
  return OkStatus();
}

}  // namespace ucp
