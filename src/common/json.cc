#include "src/common/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ucp {

bool Json::AsBool() const {
  UCP_CHECK(is_bool()) << "Json::AsBool on non-bool";
  return std::get<bool>(value_);
}

int64_t Json::AsInt() const {
  if (is_double()) {
    double d = std::get<double>(value_);
    UCP_CHECK(d == std::floor(d)) << "Json::AsInt on non-integral double " << d;
    return static_cast<int64_t>(d);
  }
  UCP_CHECK(is_int()) << "Json::AsInt on non-number";
  return std::get<int64_t>(value_);
}

double Json::AsDouble() const {
  if (is_int()) {
    return static_cast<double>(std::get<int64_t>(value_));
  }
  UCP_CHECK(is_double()) << "Json::AsDouble on non-number";
  return std::get<double>(value_);
}

const std::string& Json::AsString() const {
  UCP_CHECK(is_string()) << "Json::AsString on non-string";
  return std::get<std::string>(value_);
}

const JsonArray& Json::AsArray() const {
  UCP_CHECK(is_array()) << "Json::AsArray on non-array";
  return std::get<JsonArray>(value_);
}

JsonArray& Json::AsArray() {
  UCP_CHECK(is_array()) << "Json::AsArray on non-array";
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::AsObject() const {
  UCP_CHECK(is_object()) << "Json::AsObject on non-object";
  return std::get<JsonObject>(value_);
}

JsonObject& Json::AsObject() {
  UCP_CHECK(is_object()) << "Json::AsObject on non-object";
  return std::get<JsonObject>(value_);
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) {
    value_ = JsonObject{};
  }
  return AsObject()[key];
}

bool Json::Has(const std::string& key) const {
  return is_object() && AsObject().count(key) > 0;
}

Result<int64_t> Json::GetInt(const std::string& key) const {
  if (!is_object()) {
    return InvalidArgumentError("not a JSON object");
  }
  auto it = AsObject().find(key);
  if (it == AsObject().end()) {
    return NotFoundError("missing JSON key: " + key);
  }
  if (!it->second.is_number()) {
    return InvalidArgumentError("JSON key is not a number: " + key);
  }
  return it->second.AsInt();
}

Result<double> Json::GetDouble(const std::string& key) const {
  if (!is_object()) {
    return InvalidArgumentError("not a JSON object");
  }
  auto it = AsObject().find(key);
  if (it == AsObject().end()) {
    return NotFoundError("missing JSON key: " + key);
  }
  if (!it->second.is_number()) {
    return InvalidArgumentError("JSON key is not a number: " + key);
  }
  return it->second.AsDouble();
}

Result<std::string> Json::GetString(const std::string& key) const {
  if (!is_object()) {
    return InvalidArgumentError("not a JSON object");
  }
  auto it = AsObject().find(key);
  if (it == AsObject().end()) {
    return NotFoundError("missing JSON key: " + key);
  }
  if (!it->second.is_string()) {
    return InvalidArgumentError("JSON key is not a string: " + key);
  }
  return it->second.AsString();
}

Result<bool> Json::GetBool(const std::string& key) const {
  if (!is_object()) {
    return InvalidArgumentError("not a JSON object");
  }
  auto it = AsObject().find(key);
  if (it == AsObject().end()) {
    return NotFoundError("missing JSON key: " + key);
  }
  if (!it->second.is_bool()) {
    return InvalidArgumentError("JSON key is not a bool: " + key);
  }
  return it->second.AsBool();
}

Result<const JsonArray*> Json::GetArray(const std::string& key) const {
  if (!is_object()) {
    return InvalidArgumentError("not a JSON object");
  }
  auto it = AsObject().find(key);
  if (it == AsObject().end()) {
    return NotFoundError("missing JSON key: " + key);
  }
  if (!it->second.is_array()) {
    return InvalidArgumentError("JSON key is not an array: " + key);
  }
  return &it->second.AsArray();
}

Result<const JsonObject*> Json::GetObject(const std::string& key) const {
  if (!is_object()) {
    return InvalidArgumentError("not a JSON object");
  }
  auto it = AsObject().find(key);
  if (it == AsObject().end()) {
    return NotFoundError("missing JSON key: " + key);
  }
  if (!it->second.is_object()) {
    return InvalidArgumentError("JSON key is not an object: " + key);
  }
  return &it->second.AsObject();
}

namespace {

void EscapeInto(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void DumpInto(const Json& v, int indent, int depth, std::string& out);

void Newline(int indent, int depth, std::string& out) {
  if (indent > 0) {
    out += '\n';
    out.append(static_cast<size_t>(indent) * depth, ' ');
  }
}

void DumpInto(const Json& v, int indent, int depth, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.AsBool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.AsInt());
  } else if (v.is_double()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
    out += buf;
    // Keep a float marker so the value parses back as a double, not an int.
    if (out.find_first_of(".eE", out.size() - std::strlen(buf)) == std::string::npos) {
      out += ".0";
    }
  } else if (v.is_string()) {
    EscapeInto(v.AsString(), out);
  } else if (v.is_array()) {
    const JsonArray& arr = v.AsArray();
    out += '[';
    for (size_t i = 0; i < arr.size(); ++i) {
      if (i > 0) {
        out += indent > 0 ? "," : ",";
      }
      Newline(indent, depth + 1, out);
      DumpInto(arr[i], indent, depth + 1, out);
    }
    if (!arr.empty()) {
      Newline(indent, depth, out);
    }
    out += ']';
  } else {
    const JsonObject& obj = v.AsObject();
    out += '{';
    bool first = true;
    for (const auto& [key, value] : obj) {
      if (!first) {
        out += ",";
      }
      first = false;
      Newline(indent, depth + 1, out);
      EscapeInto(key, out);
      out += indent > 0 ? ": " : ":";
      DumpInto(value, indent, depth + 1, out);
    }
    if (!obj.empty()) {
      Newline(indent, depth, out);
    }
    out += '}';
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return DataLossError("unexpected end of JSON input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return ParseString();
      case 't':
      case 'f':
        return ParseBool();
      case 'n':
        return ParseNull();
      default:
        return ParseNumber();
    }
  }

  Status ExpectEnd() {
    SkipWs();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing characters after JSON value at offset " +
                                  std::to_string(pos_));
    }
    return OkStatus();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Expect(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return InvalidArgumentError(std::string("expected '") + c + "' at offset " +
                                  std::to_string(pos_));
    }
    ++pos_;
    return OkStatus();
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<Json> ParseObject() {
    UCP_RETURN_IF_ERROR(Expect('{'));
    JsonObject obj;
    if (Peek('}')) {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      SkipWs();
      UCP_ASSIGN_OR_RETURN(Json key, ParseString());
      UCP_RETURN_IF_ERROR(Expect(':'));
      UCP_ASSIGN_OR_RETURN(Json value, ParseValue());
      obj[key.AsString()] = std::move(value);
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      UCP_RETURN_IF_ERROR(Expect('}'));
      return Json(std::move(obj));
    }
  }

  Result<Json> ParseArray() {
    UCP_RETURN_IF_ERROR(Expect('['));
    JsonArray arr;
    if (Peek(']')) {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      UCP_ASSIGN_OR_RETURN(Json value, ParseValue());
      arr.push_back(std::move(value));
      if (Peek(',')) {
        ++pos_;
        continue;
      }
      UCP_RETURN_IF_ERROR(Expect(']'));
      return Json(std::move(arr));
    }
  }

  Result<Json> ParseString() {
    UCP_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return Json(std::move(out));
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return DataLossError("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return InvalidArgumentError("bad hex digit in \\u escape");
            }
          }
          // Encode as UTF-8 (BMP only; surrogate pairs are not needed for our metadata).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return InvalidArgumentError(std::string("bad escape '\\") + esc + "'");
      }
    }
    return DataLossError("unterminated JSON string");
  }

  Result<Json> ParseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json(false);
    }
    return InvalidArgumentError("bad literal at offset " + std::to_string(pos_));
  }

  Result<Json> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json(nullptr);
    }
    return InvalidArgumentError("bad literal at offset " + std::to_string(pos_));
  }

  Result<Json> ParseNumber() {
    size_t start = pos_;
    bool is_float = false;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only valid after exponent marker, but a strtod reparse catches misuse.
        is_float = is_float || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      return InvalidArgumentError("expected number at offset " + std::to_string(start));
    }
    std::string token = text_.substr(start, pos_ - start);
    if (!is_float) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return Json(static_cast<int64_t>(v));
      }
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      return InvalidArgumentError("malformed number: " + token);
    }
    return Json(d);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump(int indent) const {
  std::string out;
  DumpInto(*this, indent, 0, out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  Parser parser(text);
  UCP_ASSIGN_OR_RETURN(Json value, parser.ParseValue());
  UCP_RETURN_IF_ERROR(parser.ExpectEnd());
  return value;
}

}  // namespace ucp
