// CRC32 (ISO-HDLC polynomial, same as zlib's crc32) for checkpoint integrity checking.

#ifndef UCP_SRC_COMMON_CRC32_H_
#define UCP_SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ucp {

// One-shot CRC of a buffer.
uint32_t Crc32(const void* data, size_t size);

// Incremental form: crc = Crc32Update(crc, chunk, n) starting from Crc32Init().
uint32_t Crc32Init();
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);
uint32_t Crc32Finalize(uint32_t crc);

}  // namespace ucp

#endif  // UCP_SRC_COMMON_CRC32_H_
