// Fixed-size worker pool used by the UCP converter to parallelize Extract/Union at parameter
// granularity (Table 2: "More parallelism leads to faster speed but is also more memory
// intensive" — the pool size is the knob).

#ifndef UCP_SRC_COMMON_THREAD_POOL_H_
#define UCP_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ucp {

class ThreadPool {
 public:
  // num_threads == 0 runs every task inline on the submitting thread (useful for debugging
  // and for memory-constrained conversions).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. May be called repeatedly.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

  // Runs fn(i) for i in [0, n), distributed over the pool, and waits for completion.
  // Exceptions must not escape fn.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable work_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

}  // namespace ucp

#endif  // UCP_SRC_COMMON_THREAD_POOL_H_
