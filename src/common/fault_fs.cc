#include "src/common/fault_fs.h"

#include <atomic>
#include <mutex>

#include "src/common/rng.h"

namespace ucp {
namespace {

struct InjectorState {
  std::mutex mu;
  FaultPlan plan;
  int matching_ops = 0;  // ops matching (plan.op, plan.path_substr) since ArmFault
  bool fired = false;
};

// `armed` is the production fast path: a relaxed load decides whether to take the lock at
// all. The full state behind it changes only under the mutex.
std::atomic<bool> g_armed{false};
InjectorState& State() {
  static InjectorState* state = new InjectorState();
  return *state;
}

}  // namespace

void ArmFault(const FaultPlan& plan) {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.plan = plan;
  s.matching_ops = 0;
  s.fired = false;
  g_armed.store(true, std::memory_order_release);
}

void DisarmFaults() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  g_armed.store(false, std::memory_order_release);
  s.matching_ops = 0;
  s.fired = false;
}

bool FaultFired() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.fired;
}

int FaultOpsSeen() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.matching_ops;
}

namespace fault_internal {

FaultAction CheckFault(FsOp op, const std::string& path) {
  FaultAction action;
  if (!g_armed.load(std::memory_order_acquire)) {
    return action;
  }
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (op != s.plan.op || path.find(s.plan.path_substr) == std::string::npos) {
    return action;
  }
  ++s.matching_ops;
  if (s.plan.kind == FaultPlan::Kind::kTransient) {
    // Fail a window of [nth, nth + fail_count) consecutive matching attempts, then let the
    // retry succeed. `fired` latches on the first failed attempt.
    if (s.matching_ops >= s.plan.nth && s.matching_ops < s.plan.nth + s.plan.fail_count) {
      s.fired = true;
      action.transient = true;
    }
    return action;
  }
  if (s.fired || s.matching_ops != s.plan.nth) {
    return action;
  }
  s.fired = true;
  switch (s.plan.kind) {
    case FaultPlan::Kind::kFailStop:
      action.fail = true;
      break;
    case FaultPlan::Kind::kTornWrite:
      action.torn = true;
      // The caller reduces this mod the write size; Mix64 spreads the seed so nearby seeds
      // tear at unrelated offsets.
      action.torn_bytes = Mix64(s.plan.seed);
      break;
    case FaultPlan::Kind::kBitRot:
      action.bitrot = true;
      action.bitrot_bit = Mix64(s.plan.seed + 1);
      break;
    case FaultPlan::Kind::kTransient:
      break;  // handled above
  }
  return action;
}

}  // namespace fault_internal

}  // namespace ucp
