#include "src/common/fault_fs.h"

#include <atomic>
#include <mutex>
#include <utility>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace ucp {
namespace {

struct InjectorState {
  std::mutex mu;
  FaultPlan plan;
  int matching_ops = 0;  // ops matching (plan.op, plan.path_substr) since ArmFault
  bool fired = false;
};

// `armed` is the production fast path: a relaxed load decides whether to take the lock at
// all. The full state behind it changes only under the mutex.
std::atomic<bool> g_armed{false};
InjectorState& State() {
  static InjectorState* state = new InjectorState();
  return *state;
}

const char* FsOpName(FsOp op) {
  switch (op) {
    case FsOp::kWrite: return "write";
    case FsOp::kFsync: return "fsync";
    case FsOp::kRename: return "rename";
    case FsOp::kRead: return "read";
  }
  return "?";
}

struct AuditState {
  std::mutex mu;
  bool active = false;
  std::vector<IoAuditBucket> buckets;
  IoAuditReport report;
};

std::atomic<bool> g_audit_active{false};
AuditState& Audit() {
  static AuditState* state = new AuditState();
  return *state;
}

// Leaked on thread exit by design (trivially destructible storage keeps the hook safe to
// call from detached/static-destruction contexts).
thread_local std::string* t_audit_context = nullptr;

std::string CurrentAuditContext() {
  return t_audit_context == nullptr ? std::string() : *t_audit_context;
}

}  // namespace

std::string IoAuditViolation::ToString() const {
  return std::string("thread[") + thread_context + "] " + FsOpName(op) + " on bucket[" +
         bucket + "] path " + path;
}

void SetThreadIoAuditContext(const std::string& context) {
  if (t_audit_context == nullptr) {
    t_audit_context = new std::string();
  }
  *t_audit_context = context;
}

ScopedIoAuditContext::ScopedIoAuditContext(std::string context)
    : previous_(CurrentAuditContext()) {
  if (t_audit_context == nullptr) {
    t_audit_context = new std::string();
  }
  *t_audit_context = std::move(context);
}

ScopedIoAuditContext::~ScopedIoAuditContext() { *t_audit_context = previous_; }

ScopedIoAudit::ScopedIoAudit(std::vector<IoAuditBucket> buckets) {
  AuditState& a = Audit();
  std::lock_guard<std::mutex> lock(a.mu);
  UCP_CHECK(!a.active) << "nested ScopedIoAudit";
  a.active = true;
  a.buckets = std::move(buckets);
  a.report = IoAuditReport();
  for (const IoAuditBucket& bucket : a.buckets) {
    a.report.ops_per_bucket[bucket.name] = 0;
  }
  g_audit_active.store(true, std::memory_order_release);
}

ScopedIoAudit::~ScopedIoAudit() {
  AuditState& a = Audit();
  std::lock_guard<std::mutex> lock(a.mu);
  g_audit_active.store(false, std::memory_order_release);
  a.active = false;
  a.buckets.clear();
}

IoAuditReport ScopedIoAudit::Report() const {
  AuditState& a = Audit();
  std::lock_guard<std::mutex> lock(a.mu);
  return a.report;
}

void ArmFault(const FaultPlan& plan) {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.plan = plan;
  s.matching_ops = 0;
  s.fired = false;
  g_armed.store(true, std::memory_order_release);
}

void DisarmFaults() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  g_armed.store(false, std::memory_order_release);
  s.matching_ops = 0;
  s.fired = false;
}

bool FaultFired() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.fired;
}

int FaultOpsSeen() {
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.matching_ops;
}

namespace fault_internal {

FaultAction CheckFault(FsOp op, const std::string& path) {
  FaultAction action;
  if (!g_armed.load(std::memory_order_acquire)) {
    return action;
  }
  InjectorState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (op != s.plan.op || path.find(s.plan.path_substr) == std::string::npos) {
    return action;
  }
  ++s.matching_ops;
  if (s.plan.kind == FaultPlan::Kind::kTransient) {
    // Fail a window of [nth, nth + fail_count) consecutive matching attempts, then let the
    // retry succeed. `fired` latches on the first failed attempt.
    if (s.matching_ops >= s.plan.nth && s.matching_ops < s.plan.nth + s.plan.fail_count) {
      s.fired = true;
      action.transient = true;
    }
    return action;
  }
  if (s.fired || s.matching_ops != s.plan.nth) {
    return action;
  }
  s.fired = true;
  switch (s.plan.kind) {
    case FaultPlan::Kind::kFailStop:
      action.fail = true;
      break;
    case FaultPlan::Kind::kTornWrite:
      action.torn = true;
      // The caller reduces this mod the write size; Mix64 spreads the seed so nearby seeds
      // tear at unrelated offsets.
      action.torn_bytes = Mix64(s.plan.seed);
      break;
    case FaultPlan::Kind::kBitRot:
      action.bitrot = true;
      action.bitrot_bit = Mix64(s.plan.seed + 1);
      break;
    case FaultPlan::Kind::kTransient:
      break;  // handled above
  }
  return action;
}

void NoteFsOp(FsOp op, const std::string& path) {
  if (!g_audit_active.load(std::memory_order_acquire)) {
    return;
  }
  const std::string context = CurrentAuditContext();
  AuditState& a = Audit();
  std::lock_guard<std::mutex> lock(a.mu);
  if (!a.active) {
    return;
  }
  const IoAuditBucket* matched = nullptr;
  for (const IoAuditBucket& bucket : a.buckets) {
    for (const std::string& substr : bucket.path_substrs) {
      if (!substr.empty() && path.find(substr) != std::string::npos) {
        matched = &bucket;
        break;
      }
    }
    if (matched != nullptr) {
      break;
    }
  }
  if (matched == nullptr) {
    ++a.report.unmatched_ops;
    return;
  }
  ++a.report.ops_per_bucket[matched->name];
  if (!context.empty() && context != matched->name) {
    IoAuditViolation violation;
    violation.thread_context = context;
    violation.bucket = matched->name;
    violation.op = op;
    violation.path = path;
    a.report.violations.push_back(std::move(violation));
  }
}

}  // namespace fault_internal

}  // namespace ucp
