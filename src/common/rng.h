// Deterministic random number generation.
//
// Two generators are provided:
//  - Rng: a sequential splitmix64 stream, for code that owns its generator.
//  - CounterRng: a pure function of (seed, stream, counter). This is what makes the training
//    simulator reproducible across parallel configurations: any rank can compute "random"
//    value i of stream s without having observed values 0..i-1, so data batches and
//    initialization do not depend on how work is partitioned.

#ifndef UCP_SRC_COMMON_RNG_H_
#define UCP_SRC_COMMON_RNG_H_

#include <cstdint>

namespace ucp {

// splitmix64 finalizer: a strong 64-bit mix used by both generators.
uint64_t Mix64(uint64_t x);

// Sequential generator (splitmix64).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64();
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform in [0, n).
  uint64_t NextBounded(uint64_t n);
  // Standard normal via Box-Muller (consumes two uniforms).
  float NextGaussian();

 private:
  uint64_t state_;
  bool has_spare_ = false;
  float spare_ = 0.0f;
};

// Counter-based generator: stateless, indexable.
class CounterRng {
 public:
  CounterRng(uint64_t seed, uint64_t stream) : seed_(seed), stream_(stream) {}

  uint64_t U64At(uint64_t counter) const;
  double DoubleAt(uint64_t counter) const;         // [0, 1)
  uint64_t BoundedAt(uint64_t counter, uint64_t n) const;  // [0, n)
  float GaussianAt(uint64_t counter) const;        // standard normal

 private:
  uint64_t seed_;
  uint64_t stream_;
};

}  // namespace ucp

#endif  // UCP_SRC_COMMON_RNG_H_
