// Error model for the UCP library.
//
// The library does not throw exceptions across module boundaries. Fallible operations return
// Status (for void results) or Result<T>. Internal invariant violations use UCP_CHECK, which
// aborts with a diagnostic: these indicate bugs, not environmental failures.

#ifndef UCP_SRC_COMMON_STATUS_H_
#define UCP_SRC_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <variant>

namespace ucp {

// Canonical error space, loosely modeled on absl::StatusCode. Keep this list small: codes are
// for *dispatch* (can the caller retry? is the input bad?), messages are for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // file / parameter / rank does not exist
  kAlreadyExists,     // refusing to overwrite
  kFailedPrecondition,// object in wrong state for this call
  kOutOfRange,        // index / offset outside valid range
  kDataLoss,          // corruption detected (CRC mismatch, truncated file)
  kIoError,           // underlying filesystem call failed (permanent: retrying won't help)
  kUnavailable,       // transient environmental failure; safe to retry with backoff
  kUnimplemented,     // feature intentionally not supported
  kInternal,          // invariant violation surfaced as recoverable error
};

// Human-readable name of a status code ("kDataLoss" -> "DATA_LOSS").
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "DATA_LOSS: crc mismatch in foo" or "OK".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) { return os << s.ToString(); }

// Convenience constructors, mirroring absl.
Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status DataLossError(std::string message);
Status IoError(std::string message);
Status UnavailableError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

// A value-or-error. Accessing value() on an error aborts (use ok() first, or the
// UCP_ASSIGN_OR_RETURN macro).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {    // NOLINT: implicit by design
    if (std::get<Status>(value_).ok()) {
      std::cerr << "Result<T> constructed from OK status\n";
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  T& value() & {
    CheckOk();
    return std::get<T>(value_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(value_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(value_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: " << std::get<Status>(value_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> value_;
};

namespace internal {
// Stream-style message builder for the check macros.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ucp

// Aborts with a diagnostic when `cond` is false. For programmer errors only.
#define UCP_CHECK(cond)                                         \
  if (!(cond)) ::ucp::internal::FatalMessage(__FILE__, __LINE__, #cond).stream()

#define UCP_CHECK_EQ(a, b) UCP_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define UCP_CHECK_NE(a, b) UCP_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define UCP_CHECK_LT(a, b) UCP_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define UCP_CHECK_LE(a, b) UCP_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define UCP_CHECK_GT(a, b) UCP_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define UCP_CHECK_GE(a, b) UCP_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

// Early-return plumbing for Status / Result.
#define UCP_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::ucp::Status _ucp_status = (expr);             \
    if (!_ucp_status.ok()) return _ucp_status;      \
  } while (0)

#define UCP_INTERNAL_CONCAT2(a, b) a##b
#define UCP_INTERNAL_CONCAT(a, b) UCP_INTERNAL_CONCAT2(a, b)

#define UCP_ASSIGN_OR_RETURN(lhs, expr)                                     \
  auto UCP_INTERNAL_CONCAT(_ucp_result_, __LINE__) = (expr);                \
  if (!UCP_INTERNAL_CONCAT(_ucp_result_, __LINE__).ok())                    \
    return UCP_INTERNAL_CONCAT(_ucp_result_, __LINE__).status();            \
  lhs = std::move(UCP_INTERNAL_CONCAT(_ucp_result_, __LINE__)).value()

#endif  // UCP_SRC_COMMON_STATUS_H_
