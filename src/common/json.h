// A compact JSON value type, parser, and serializer.
//
// Checkpoint metadata (atom-checkpoint manifests, strategy descriptors, UCP partition maps)
// is stored as JSON so that checkpoints are inspectable with standard tools. This supports
// the full JSON data model except exotic number forms; integers up to 2^53 round-trip
// exactly via the double representation and an additional integer fast path.

#ifndef UCP_SRC_COMMON_JSON_H_
#define UCP_SRC_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/status.h"

namespace ucp {

class Json;
using JsonArray = std::vector<Json>;
// std::map keeps keys sorted, which makes serialized metadata deterministic — important for
// checkpoint diffing and for the bit-identity tests.
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}            // NOLINT: implicit by design
  Json(bool b) : value_(b) {}                          // NOLINT
  Json(int v) : value_(static_cast<int64_t>(v)) {}     // NOLINT
  Json(int64_t v) : value_(v) {}                       // NOLINT
  Json(uint64_t v) : value_(static_cast<int64_t>(v)) {}  // NOLINT
  Json(double v) : value_(v) {}                        // NOLINT
  Json(const char* s) : value_(std::string(s)) {}      // NOLINT
  Json(std::string s) : value_(std::move(s)) {}        // NOLINT
  Json(JsonArray a) : value_(std::move(a)) {}          // NOLINT
  Json(JsonObject o) : value_(std::move(o)) {}         // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  // Typed accessors abort on type mismatch (UCP_CHECK); use the Get* helpers on untrusted
  // input.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const JsonArray& AsArray() const;
  JsonArray& AsArray();
  const JsonObject& AsObject() const;
  JsonObject& AsObject();

  // Object field access; aborts if not an object. operator[] inserts null for missing keys.
  Json& operator[](const std::string& key);
  bool Has(const std::string& key) const;

  // Fallible lookups for parsing untrusted metadata.
  Result<int64_t> GetInt(const std::string& key) const;
  Result<double> GetDouble(const std::string& key) const;
  Result<std::string> GetString(const std::string& key) const;
  Result<bool> GetBool(const std::string& key) const;
  Result<const JsonArray*> GetArray(const std::string& key) const;
  Result<const JsonObject*> GetObject(const std::string& key) const;

  // Serialization. `indent` <= 0 gives compact one-line output.
  std::string Dump(int indent = 0) const;

  static Result<Json> Parse(const std::string& text);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, JsonArray, JsonObject> value_;
};

}  // namespace ucp

#endif  // UCP_SRC_COMMON_JSON_H_
