#include "src/common/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/obs/trace.h"

namespace ucp {
namespace {

// The UCP_LOG_LEVEL env var (debug|info|warning|error|off, or 0-4) sets the initial
// threshold; SetLogLevel still overrides it at runtime.
LogLevel InitialLogLevel() {
  const char* env = std::getenv("UCP_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0) {
    return LogLevel::kDebug;
  }
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(env, "warning") == 0 || std::strcmp(env, "warn") == 0 ||
      std::strcmp(env, "2") == 0) {
    return LogLevel::kWarning;
  }
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "none") == 0 ||
      std::strcmp(env, "4") == 0) {
    return LogLevel::kOff;
  }
  return LogLevel::kWarning;
}

std::atomic<LogLevel>& LogLevelFlag() {
  static std::atomic<LogLevel> level{InitialLogLevel()};
  return level;
}

std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Just the basename keeps log lines short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  LogLevelFlag().store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return LogLevelFlag().load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level);
  // Rank-tagged threads (inside RunSpmd) prefix their simulated rank so interleaved
  // SPMD output stays attributable.
  const int rank = obs::CurrentThreadRank();
  if (rank >= 0) {
    stream_ << " r" << rank;
  }
  stream_ << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  // Re-check the threshold: the level may have been raised (e.g. a bench silencing the
  // runtime) between the macro's filter and this flush.
  if (level_ < GetLogLevel()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::ostream& out = level_ >= LogLevel::kWarning ? std::cerr : std::clog;
  out << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace ucp
