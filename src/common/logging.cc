#include "src/common/logging.h"

#include <atomic>
#include <cstring>
#include <iostream>

namespace ucp {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kWarning};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

// Just the basename keeps log lines short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::ostream& out = level_ >= LogLevel::kWarning ? std::cerr : std::clog;
  out << stream_.str() << "\n";
}

}  // namespace internal
}  // namespace ucp
