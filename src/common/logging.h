// Minimal leveled logging. Thread safe at line granularity; levels are filtered by a global
// threshold so benches can silence the runtime.

#ifndef UCP_SRC_COMMON_LOGGING_H_
#define UCP_SRC_COMMON_LOGGING_H_

#include <mutex>
#include <sstream>
#include <string>

namespace ucp {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped. Defaults to kWarning so library users
// are not spammed; tests and examples raise verbosity explicitly.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace ucp

#define UCP_LOG(level)                                                          \
  if (::ucp::LogLevel::k##level >= ::ucp::GetLogLevel())                        \
  ::ucp::internal::LogMessage(::ucp::LogLevel::k##level, __FILE__, __LINE__).stream()

#endif  // UCP_SRC_COMMON_LOGGING_H_
