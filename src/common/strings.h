// Small string utilities used throughout (parameter-name manipulation, pattern globs).

#ifndef UCP_SRC_COMMON_STRINGS_H_
#define UCP_SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace ucp {

// Splits on every occurrence of `sep`; empty pieces are kept ("a..b" -> {"a","","b"}).
std::vector<std::string> StrSplit(std::string_view text, char sep);

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Glob match with `*` (any run, including empty, may cross '.') and `?` (any single char).
// This is the matching primitive of the UCP language's parameter patterns: rules bind to
// parameter names like "layers.*.attention.qkv.weight".
bool GlobMatch(std::string_view pattern, std::string_view text);

// Zero-padded decimal, e.g. ZeroPad(7, 3) == "007". Used in rank-file naming.
std::string ZeroPad(int value, int width);

// Printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ucp

#endif  // UCP_SRC_COMMON_STRINGS_H_
