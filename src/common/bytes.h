// Little-endian binary serialization primitives for checkpoint files.
//
// All on-disk integers are little-endian regardless of host byte order; the tensor file
// header carries an endianness tag so corruption of the tag is detectable.

#ifndef UCP_SRC_COMMON_BYTES_H_
#define UCP_SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace ucp {

// Append-only byte sink.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  // Length-prefixed string (u32 length + raw bytes).
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t size);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

// Bounds-checked reader over a byte span. Reads past the end return kDataLoss, so truncated
// checkpoint files fail loudly instead of yielding garbage.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& s) : ByteReader(s.data(), s.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<float> GetF32();
  Result<double> GetF64();
  Result<std::string> GetString();
  Status GetBytes(void* out, size_t size);

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace ucp

#endif  // UCP_SRC_COMMON_BYTES_H_
