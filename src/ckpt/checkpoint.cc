#include "src/ckpt/checkpoint.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include <chrono>

#include "src/ckpt/async/snapshot.h"
#include "src/common/fs.h"
#include "src/common/strings.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/tensor_file.h"

namespace ucp {

Json CheckpointMeta::ToJson() const {
  JsonObject obj;
  obj["model"] = model.ToJson();
  obj["strategy"] = strategy.ToJson();
  obj["iteration"] = iteration;
  obj["global_batch"] = global_batch;
  obj["data_seed"] = static_cast<int64_t>(data_seed);
  obj["compute_dtype"] = static_cast<int64_t>(compute_dtype);
  obj["format_version"] = 1;
  return Json(std::move(obj));
}

Result<CheckpointMeta> CheckpointMeta::FromJson(const Json& json) {
  CheckpointMeta meta;
  UCP_ASSIGN_OR_RETURN(int64_t version, json.GetInt("format_version"));
  if (version != 1) {
    return FailedPreconditionError("unsupported checkpoint format version " +
                                   std::to_string(version));
  }
  if (!json.Has("model") || !json.Has("strategy")) {
    return DataLossError("checkpoint meta missing model/strategy");
  }
  UCP_ASSIGN_OR_RETURN(meta.model, ModelConfig::FromJson(json.AsObject().at("model")));
  UCP_ASSIGN_OR_RETURN(meta.strategy,
                       ParallelConfig::FromJson(json.AsObject().at("strategy")));
  UCP_ASSIGN_OR_RETURN(meta.iteration, json.GetInt("iteration"));
  UCP_ASSIGN_OR_RETURN(int64_t batch, json.GetInt("global_batch"));
  meta.global_batch = static_cast<int>(batch);
  UCP_ASSIGN_OR_RETURN(int64_t seed, json.GetInt("data_seed"));
  meta.data_seed = static_cast<uint64_t>(seed);
  UCP_ASSIGN_OR_RETURN(int64_t dtype, json.GetInt("compute_dtype"));
  if (dtype < 0 || dtype > static_cast<int64_t>(DType::kF16)) {
    return DataLossError("bad compute dtype in checkpoint meta");
  }
  meta.compute_dtype = static_cast<DType>(dtype);
  return meta;
}

bool IsValidJobId(const std::string& job) {
  if (job.empty()) {
    return true;  // the default namespace
  }
  if (job.size() > 64 || job == "latest") {  // `latest` would collide with pointer files
    return false;
  }
  for (char c : job) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '-') {
      return false;
    }
  }
  return true;
}

std::string JobTagPrefix(const std::string& job) {
  return job.empty() ? std::string() : job + ".";
}

std::string LatestFileName(const std::string& job) {
  return job.empty() ? std::string("latest") : "latest." + job;
}

bool ParseTagName(const std::string& name, std::string* job, int64_t* iteration) {
  constexpr char kPrefix[] = "global_step";
  // Job ids contain no '.', so the first dot (if any) separates job from tag body. Names
  // with trailing suffixes (".staging", ".ucp", ".quarantined") fail the strict digit
  // parse below and never match.
  std::string j;
  std::string rest;
  const size_t dot = name.find('.');
  if (dot == std::string::npos) {
    rest = name;
  } else {
    j = name.substr(0, dot);
    rest = name.substr(dot + 1);
    if (j.empty() || !IsValidJobId(j)) {
      return false;
    }
  }
  if (!StartsWith(rest, kPrefix)) {
    return false;
  }
  const char* digits = rest.c_str() + sizeof(kPrefix) - 1;
  if (*digits == '\0') {
    return false;
  }
  for (const char* p = digits; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return false;
    }
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(digits, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return false;
  }
  if (job != nullptr) {
    *job = j;
  }
  if (iteration != nullptr) {
    *iteration = parsed;
  }
  return true;
}

std::string TagForIteration(int64_t iteration) {
  return "global_step" + std::to_string(iteration);
}

std::string TagForIteration(const std::string& job, int64_t iteration) {
  return JobTagPrefix(job) + TagForIteration(iteration);
}

std::string ModelStatesFileName(int tp, int pp, int sp) {
  return StrFormat("mp_rank_%02d_%03d_sp_%02d_model_states", tp, pp, sp);
}

std::string OptimStatesFileName(int dp, int tp, int pp, int sp) {
  return StrFormat("zero_pp_rank_%d_mp_rank_%02d_%03d_sp_%02d_optim_states", dp, tp, pp, sp);
}

namespace {

constexpr char kCompleteMarker[] = "complete";
constexpr char kStagingSuffix[] = ".staging";

// This rank's shard writes into the staging directory: a fresh snapshot, serialized
// immediately (the synchronous save has no one to hand the copy to). Pure local I/O — no
// collectives, no early returns across barriers; the caller aggregates outcomes.
Status WriteRankShards(const std::string& staging, RankTrainer& trainer) {
  RankCheckpointSnapshot snap;
  {
    UCP_TRACE_SPAN("save.snapshot");
    snap.CaptureFrom(trainer);
  }
  UCP_TRACE_SPAN("save.write_shards");
  return WriteSnapshotShards(staging, snap);
}

}  // namespace

std::string StagingDirForTag(const std::string& dir, const std::string& tag) {
  return PathJoin(dir, tag) + kStagingSuffix;
}

CheckpointMeta MetaForSave(const RankTrainer& trainer, int64_t iteration) {
  CheckpointMeta meta;
  meta.model = trainer.config().model;
  meta.strategy = trainer.config().strategy;
  meta.iteration = iteration;
  meta.global_batch = trainer.config().global_batch;
  meta.data_seed = trainer.config().data_seed;
  meta.compute_dtype = trainer.config().compute_dtype;
  return meta;
}

// The commit: metadata into staging, publish via rename, marker last, then `latest`. The
// ordering is the whole protocol — a crash between any two steps leaves a state every
// reader handles (no tag / unmarked tag / marked tag with a stale `latest`).
Status CommitCheckpointTag(const std::string& dir, const std::string& tag,
                           const CheckpointMeta& meta) {
  UCP_TRACE_SPAN_ARGS("save.commit", ::ucp::obs::TraceArgs().S("tag", tag));
  static obs::Counter& commits =
      obs::MetricsRegistry::Global().GetCounter("save.commits");
  const std::string tag_dir = PathJoin(dir, tag);
  const std::string staging = StagingDirForTag(dir, tag);
  UCP_RETURN_IF_ERROR(
      WriteFileAtomic(PathJoin(staging, "checkpoint_meta.json"), meta.ToJson().Dump(2)));
  // Re-saving a tag replaces the previous commit wholesale.
  UCP_RETURN_IF_ERROR(RemoveAll(tag_dir));
  UCP_RETURN_IF_ERROR(RenamePath(staging, tag_dir));
  UCP_RETURN_IF_ERROR(WriteFileAtomic(PathJoin(tag_dir, kCompleteMarker), tag));
  // The latest pointer belongs to the namespace the tag name carries; free-form tags
  // (tools, tests) fall back to the default job's pointer.
  std::string job;
  if (!ParseTagName(tag, &job, nullptr)) {
    job.clear();
  }
  UCP_RETURN_IF_ERROR(WriteFileAtomic(PathJoin(dir, LatestFileName(job)), tag));
  commits.Add(1);
  return OkStatus();
}

Result<int> CleanStagingDebris(const std::string& dir, const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  if (!DirExists(dir)) {
    return 0;
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> entries, ListDir(dir));
  int removed = 0;
  for (const std::string& name : entries) {
    if (name.size() <= sizeof(kStagingSuffix) - 1 || !EndsWith(name, kStagingSuffix) ||
        !DirExists(PathJoin(dir, name))) {
      continue;
    }
    // Ownership of a staging dir is decided by the tag name under the suffixes: both save
    // debris (`<tag>.staging`) and converter debris (`<tag>.ucp.staging`) belong to the
    // job the tag names. Staging dirs that parse to no job at all (free-form tags) are
    // swept by the default job only — they cannot belong to a namespaced job.
    std::string base = name.substr(0, name.size() - (sizeof(kStagingSuffix) - 1));
    if (EndsWith(base, ".ucp")) {
      base.resize(base.size() - 4);
    }
    std::string tag_job;
    const bool parsed = ParseTagName(base, &tag_job, nullptr);
    const bool owned = parsed ? tag_job == job : job.empty();
    if (!owned) {
      continue;
    }
    UCP_RETURN_IF_ERROR(RemoveAll(PathJoin(dir, name)));
    ++removed;
  }
  return removed;
}

Status SaveDistributedCheckpoint(const std::string& dir, RankTrainer& trainer,
                                 int64_t iteration, const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  UCP_TRACE_NAMED_SPAN(span, "save.distributed");
  UCP_TRACE_SPAN_ARG_I(span, "iteration", iteration);
  static obs::Histogram& save_seconds =
      obs::MetricsRegistry::Global().GetHistogram("save.distributed.seconds");
  const auto save_start = std::chrono::steady_clock::now();
  const std::string tag = TagForIteration(job, iteration);
  const std::string staging = StagingDirForTag(dir, tag);

  // Rank 0 resets the staging directory (debris of a previous crashed save) before any rank
  // writes into it.
  Status local = OkStatus();
  if (trainer.rank() == 0) {
    local = RemoveAll(staging);
    if (local.ok()) {
      local = MakeDirs(staging);
    }
  }
  trainer.groups().world.Barrier();

  if (local.ok()) {
    local = WriteRankShards(staging, trainer);
  }

  // Collective agreement before committing: the marker must never be written while a peer's
  // shard is missing. The all-reduce doubles as the "all shards on disk" barrier, and —
  // unlike an early return — keeps every rank in the collective so nobody strands.
  double peer_failed = trainer.groups().world.AllReduceMaxScalar(local.ok() ? 0.0 : 1.0);
  if (!local.ok() || peer_failed > 0.0) {
    if (trainer.rank() == 0) {
      RemoveAll(staging).ok();  // best effort: make the failed save retryable
    }
    if (!local.ok()) {
      return local;
    }
    return DataLossError("aborting checkpoint save: a peer rank failed to write its shard");
  }

  Status commit = OkStatus();
  if (trainer.rank() == 0) {
    commit = CommitCheckpointTag(dir, tag, MetaForSave(trainer, iteration));
  }
  trainer.groups().world.Barrier();
  save_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - save_start).count());
  return commit;
}

Result<std::string> ReadLatestTag(const std::string& dir, const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  return ReadFileToString(PathJoin(dir, LatestFileName(job)));
}

Result<std::vector<std::string>> ListCheckpointTags(const std::string& dir,
                                                    const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> entries, ListDir(dir));
  std::vector<std::pair<int64_t, std::string>> tagged;
  for (const std::string& name : entries) {
    std::string tag_job;
    int64_t iteration = 0;
    if (ParseTagName(name, &tag_job, &iteration) && tag_job == job &&
        DirExists(PathJoin(dir, name))) {
      tagged.emplace_back(iteration, name);
    }
  }
  std::sort(tagged.begin(), tagged.end());
  std::vector<std::string> tags;
  tags.reserve(tagged.size());
  for (auto& [iteration, name] : tagged) {
    tags.push_back(std::move(name));
  }
  return tags;
}

Result<std::vector<std::string>> ListAllCheckpointTags(const std::string& dir) {
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> entries, ListDir(dir));
  std::vector<std::tuple<std::string, int64_t, std::string>> tagged;
  for (const std::string& name : entries) {
    std::string tag_job;
    int64_t iteration = 0;
    if (ParseTagName(name, &tag_job, &iteration) && DirExists(PathJoin(dir, name))) {
      tagged.emplace_back(tag_job, iteration, name);
    }
  }
  std::sort(tagged.begin(), tagged.end());
  std::vector<std::string> tags;
  tags.reserve(tagged.size());
  for (auto& [job, iteration, name] : tagged) {
    tags.push_back(std::move(name));
  }
  return tags;
}

Status PruneCheckpoints(const std::string& dir, int keep_last) {
  if (keep_last < 1) {
    return InvalidArgumentError("keep_last must be >= 1");
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, ListCheckpointTags(dir));
  std::string latest;
  if (Result<std::string> latest_tag = ReadLatestTag(dir); latest_tag.ok()) {
    latest = *latest_tag;
  }
  int excess = static_cast<int>(tags.size()) - keep_last;
  for (int i = 0; i < static_cast<int>(tags.size()) && excess > 0; ++i) {
    if (tags[static_cast<size_t>(i)] == latest) {
      continue;
    }
    UCP_RETURN_IF_ERROR(RemoveAll(PathJoin(dir, tags[static_cast<size_t>(i)])));
    --excess;
  }
  return OkStatus();
}

std::string GcReport::ToString() const {
  std::string out = "gc: removed " + std::to_string(removed.size()) + ", kept " +
                    std::to_string(kept.size()) + "\n";
  for (const std::string& tag : removed) {
    out += "  removed " + tag + "\n";
  }
  for (const std::string& tag : kept) {
    out += "  kept    " + tag + "\n";
  }
  return out;
}

Result<GcReport> GcCheckpoints(const std::string& dir, int keep_last, bool dry_run,
                               const std::string& job) {
  if (keep_last < 1) {
    return InvalidArgumentError("keep_last must be >= 1");
  }
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, ListCheckpointTags(dir, job));
  std::vector<std::string> committed;
  for (const std::string& tag : tags) {
    if (IsTagComplete(dir, tag)) {
      committed.push_back(tag);  // ascending iteration order, inherited from ListCheckpointTags
    }
  }
  // The `latest` guard reads this job's own pointer — a sibling job's pointer naming its
  // own newest tag must not pin anything in this namespace (and can't: tags differ).
  std::string latest;
  if (Result<std::string> latest_tag = ReadLatestTag(dir, job); latest_tag.ok()) {
    latest = *latest_tag;
  }
  // Recency alone can destroy resumability: when every tag inside the keep window is
  // damaged (a torn write that still committed), the newest *readable* tag sits outside
  // the window, and deleting it would leave the job nothing to resume from. Pin it like
  // `latest`. Readability here is meta-readability — the same frontier definition resume's
  // tag walk starts from; a deep shard scan per GC would be disproportionate.
  std::string valid;
  if (Result<std::string> valid_tag = FindLatestValidTag(dir, job); valid_tag.ok()) {
    valid = *valid_tag;
  }
  GcReport report;
  // Protect the newest keep_last committed tags AND whatever `latest` names — when the
  // pointer lags (or was rolled back by hand), retention must not strand the resume.
  const size_t first_kept = committed.size() > static_cast<size_t>(keep_last)
                                ? committed.size() - static_cast<size_t>(keep_last)
                                : 0;
  for (size_t i = 0; i < committed.size(); ++i) {
    const std::string& tag = committed[i];
    if (i < first_kept && tag != latest && tag != valid) {
      if (!dry_run) {
        UCP_RETURN_IF_ERROR(RemoveAll(PathJoin(dir, tag)));
        // A cached UCP conversion belongs to its tag; don't orphan it.
        UCP_RETURN_IF_ERROR(RemoveAll(PathJoin(dir, tag + ".ucp")));
      }
      report.removed.push_back(tag);
    } else {
      report.kept.push_back(tag);
    }
  }
  return report;
}

bool IsTagComplete(const std::string& dir, const std::string& tag) {
  return FileExists(PathJoin(PathJoin(dir, tag), kCompleteMarker));
}

Result<std::string> FindLatestValidTag(const std::string& dir, const std::string& job) {
  UCP_ASSIGN_OR_RETURN(std::vector<std::string> tags, ListCheckpointTags(dir, job));
  for (auto it = tags.rbegin(); it != tags.rend(); ++it) {
    if (!IsTagComplete(dir, *it)) {
      continue;  // aborted save — the marker is written last
    }
    if (ReadCheckpointMeta(dir, *it).ok()) {
      return *it;
    }
  }
  return NotFoundError("no committed checkpoint tag under " + dir);
}

Result<CheckpointMeta> ReadCheckpointMeta(const std::string& dir, const std::string& tag) {
  const std::string tag_dir = PathJoin(dir, tag);
  if (DirExists(tag_dir) && !FileExists(PathJoin(tag_dir, kCompleteMarker))) {
    return DataLossError("checkpoint tag " + tag +
                         " is not committed (missing 'complete' marker)");
  }
  UCP_ASSIGN_OR_RETURN(std::string text,
                       ReadFileToString(PathJoin(tag_dir, "checkpoint_meta.json")));
  UCP_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return CheckpointMeta::FromJson(json);
}

namespace {

// The per-rank phase of loading: validation and file reads only — no collectives, so it may
// fail on one rank without stranding peers.
struct LoadedOptimState {
  Tensor master;
  Tensor exp_avg;
  Tensor exp_avg_sq;
  int64_t steps = 0;
};

Result<LoadedOptimState> LoadLocalState(const std::string& dir, const std::string& tag,
                                        RankTrainer& trainer) {
  UCP_ASSIGN_OR_RETURN(CheckpointMeta meta, ReadCheckpointMeta(dir, tag));

  // The Fig. 1 behaviour: distributed checkpoints are coupled to the strategy that produced
  // them. Any mismatch is an error, not a best-effort remap.
  if (!(meta.model == trainer.config().model)) {
    return FailedPreconditionError("model config mismatch: checkpoint was written by a "
                                   "different model architecture");
  }
  if (!(meta.strategy == trainer.config().strategy)) {
    return FailedPreconditionError(
        "parallelism mismatch: checkpoint " + meta.strategy.ToString() + " vs run " +
        trainer.config().strategy.ToString() +
        " — convert through UCP to resume under a different strategy");
  }

  const RankCoord& coord = trainer.coord();
  const std::string tag_dir = PathJoin(dir, tag);

  // Validate the model-states file (name/shape strictness), then restore optimizer state.
  UCP_ASSIGN_OR_RETURN(
      BundleInfo ms_info,
      StatBundle(PathJoin(tag_dir, ModelStatesFileName(coord.tp, coord.pp, coord.sp))));
  if (trainer.config().strategy.zero_stage < 3) {
    for (const ParamPtr& p : trainer.model().store().params()) {
      if (p->tied_secondary) {
        continue;
      }
      bool found = false;
      for (const auto& [name, info] : ms_info.entries) {
        if (name == p->info.name) {
          if (info.shape != p->value.shape()) {
            return FailedPreconditionError("shape mismatch for " + p->info.name +
                                           ": checkpoint " + ShapeToString(info.shape) +
                                           " vs model " + ShapeToString(p->value.shape()));
          }
          found = true;
          break;
        }
      }
      if (!found) {
        return FailedPreconditionError("parameter missing from checkpoint: " + p->info.name);
      }
    }
  }

  // Range-read the three flat tensors through the view: the header parses once, and for v3
  // files only the chunks backing each requested tensor are verified (not the whole file).
  UCP_ASSIGN_OR_RETURN(
      BundleFileView optim,
      BundleFileView::Open(PathJoin(tag_dir, OptimStatesFileName(coord.dp, coord.tp,
                                                                 coord.pp, coord.sp))));
  if (optim.IndexOf("fp32_flat") < 0 || optim.IndexOf("exp_avg") < 0 ||
      optim.IndexOf("exp_avg_sq") < 0) {
    return DataLossError("optimizer states bundle is missing tensors");
  }
  LoadedOptimState state;
  UCP_ASSIGN_OR_RETURN(state.master, optim.ReadTensor("fp32_flat"));
  UCP_ASSIGN_OR_RETURN(state.exp_avg, optim.ReadTensor("exp_avg"));
  UCP_ASSIGN_OR_RETURN(state.exp_avg_sq, optim.ReadTensor("exp_avg_sq"));
  UCP_ASSIGN_OR_RETURN(state.steps, optim.meta().GetInt("steps_taken"));
  return state;
}

}  // namespace

Status LoadDistributedCheckpoint(const std::string& dir, const std::string& tag,
                                 RankTrainer& trainer) {
  Result<LoadedOptimState> local = LoadLocalState(dir, tag, trainer);
  // Collective agreement before installing state: ZeroOptimizer::LoadState all-gathers
  // across the DP group, so a rank that failed its local reads must fail *everyone* here —
  // otherwise healthy peers would strand inside the collective. Every rank reaches this
  // reduction regardless of its local outcome.
  double peer_failed =
      trainer.groups().world.AllReduceMaxScalar(local.ok() ? 0.0 : 1.0);
  if (!local.ok()) {
    return local.status();
  }
  if (peer_failed > 0.0) {
    return DataLossError("aborting load: a peer rank failed to read this checkpoint");
  }
  return trainer.optimizer().LoadState(local->master, local->exp_avg, local->exp_avg_sq,
                                       local->steps);
}

}  // namespace ucp
