#include "src/ckpt/checkpoint.h"

#include <chrono>
#include <string>

#include "src/ckpt/async/snapshot.h"
#include "src/common/fs.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/store/chunk_index.h"
#include "src/tensor/tensor_file.h"

namespace ucp {

namespace {

// This rank's shard writes into the tag's staged area: a fresh snapshot, serialized
// immediately (the synchronous save has no one to hand the copy to). No collectives, no
// early returns across barriers; the caller aggregates outcomes.
Status WriteRankShards(Store& store, const std::string& tag, RankTrainer& trainer) {
  RankCheckpointSnapshot snap;
  {
    UCP_TRACE_SPAN("save.snapshot");
    snap.CaptureFrom(trainer);
  }
  UCP_TRACE_SPAN("save.write_shards");
  UCP_ASSIGN_OR_RETURN(std::unique_ptr<StoreWriter> writer, store.OpenTagForWrite(tag));
  return WriteSnapshotShards(*writer, snap);
}

}  // namespace

CheckpointMeta MetaForSave(const RankTrainer& trainer, int64_t iteration) {
  CheckpointMeta meta;
  meta.model = trainer.config().model;
  meta.strategy = trainer.config().strategy;
  meta.iteration = iteration;
  meta.global_batch = trainer.config().global_batch;
  meta.data_seed = trainer.config().data_seed;
  meta.compute_dtype = trainer.config().compute_dtype;
  return meta;
}

Status SaveDistributedCheckpoint(Store& store, RankTrainer& trainer, int64_t iteration,
                                 const std::string& job) {
  if (!IsValidJobId(job)) {
    return InvalidArgumentError("bad job id: " + job);
  }
  UCP_TRACE_NAMED_SPAN(span, "save.distributed");
  UCP_TRACE_SPAN_ARG_I(span, "iteration", iteration);
  static obs::Histogram& save_seconds =
      obs::MetricsRegistry::Global().GetHistogram("save.distributed.seconds");
  const auto save_start = std::chrono::steady_clock::now();
  const std::string tag = TagForIteration(job, iteration);

  // Rank 0 resets the staging area (debris of a previous crashed save) before any rank
  // writes into it.
  Status local = OkStatus();
  if (trainer.rank() == 0) {
    local = store.ResetTagStaging(tag);
  }
  trainer.groups().world.Barrier();

  if (local.ok()) {
    local = WriteRankShards(store, tag, trainer);
  }

  // Collective agreement before committing: the marker must never be written while a peer's
  // shard is missing. The all-reduce doubles as the "all shards staged" barrier, and —
  // unlike an early return — keeps every rank in the collective so nobody strands.
  double peer_failed = trainer.groups().world.AllReduceMaxScalar(local.ok() ? 0.0 : 1.0);
  if (!local.ok() || peer_failed > 0.0) {
    if (trainer.rank() == 0) {
      store.AbortTag(tag).ok();  // best effort: make the failed save retryable
    }
    if (!local.ok()) {
      return local;
    }
    return DataLossError("aborting checkpoint save: a peer rank failed to write its shard");
  }

  Status commit = OkStatus();
  if (trainer.rank() == 0) {
    commit = store.CommitTag(tag, MetaForSave(trainer, iteration).ToJson().Dump(2));
  }
  trainer.groups().world.Barrier();
  save_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - save_start).count());
  return commit;
}

Status SaveDistributedCheckpoint(const std::string& dir, RankTrainer& trainer,
                                 int64_t iteration, const std::string& job) {
  LocalStore store(dir);
  return SaveDistributedCheckpoint(store, trainer, iteration, job);
}

namespace {

// The per-rank phase of loading: validation and file reads only — no collectives, so it may
// fail on one rank without stranding peers.
struct LoadedOptimState {
  Tensor master;
  Tensor exp_avg;
  Tensor exp_avg_sq;
  int64_t steps = 0;
};

Result<LoadedOptimState> LoadLocalState(const std::string& dir, const std::string& tag,
                                        RankTrainer& trainer) {
  UCP_ASSIGN_OR_RETURN(CheckpointMeta meta, ReadCheckpointMeta(dir, tag));

  // The Fig. 1 behaviour: distributed checkpoints are coupled to the strategy that produced
  // them. Any mismatch is an error, not a best-effort remap.
  if (!(meta.model == trainer.config().model)) {
    return FailedPreconditionError("model config mismatch: checkpoint was written by a "
                                   "different model architecture");
  }
  if (!(meta.strategy == trainer.config().strategy)) {
    return FailedPreconditionError(
        "parallelism mismatch: checkpoint " + meta.strategy.ToString() + " vs run " +
        trainer.config().strategy.ToString() +
        " — convert through UCP to resume under a different strategy");
  }

  const RankCoord& coord = trainer.coord();
  const std::string tag_dir = PathJoin(dir, tag);

  // Validate the model-states file (name/shape strictness), then restore optimizer state.
  // Shards resolve physical-first, then through the tag's chunk manifest — an incremental
  // tag loads through the exact same statements.
  UCP_ASSIGN_OR_RETURN(
      std::unique_ptr<ByteSource> ms_source,
      OpenTagShardSource(tag_dir, ModelStatesFileName(coord.tp, coord.pp, coord.sp)));
  UCP_ASSIGN_OR_RETURN(BundleInfo ms_info, StatBundle(std::move(ms_source)));
  if (trainer.config().strategy.zero_stage < 3) {
    for (const ParamPtr& p : trainer.model().store().params()) {
      if (p->tied_secondary) {
        continue;
      }
      bool found = false;
      for (const auto& [name, info] : ms_info.entries) {
        if (name == p->info.name) {
          if (info.shape != p->value.shape()) {
            return FailedPreconditionError("shape mismatch for " + p->info.name +
                                           ": checkpoint " + ShapeToString(info.shape) +
                                           " vs model " + ShapeToString(p->value.shape()));
          }
          found = true;
          break;
        }
      }
      if (!found) {
        return FailedPreconditionError("parameter missing from checkpoint: " + p->info.name);
      }
    }
  }

  // Range-read the three flat tensors through the view: the header parses once, and for v3
  // files only the chunks backing each requested tensor are verified (not the whole file).
  UCP_ASSIGN_OR_RETURN(
      std::unique_ptr<ByteSource> optim_source,
      OpenTagShardSource(tag_dir, OptimStatesFileName(coord.dp, coord.tp, coord.pp,
                                                      coord.sp)));
  UCP_ASSIGN_OR_RETURN(BundleFileView optim,
                       BundleFileView::Open(std::move(optim_source)));
  if (optim.IndexOf("fp32_flat") < 0 || optim.IndexOf("exp_avg") < 0 ||
      optim.IndexOf("exp_avg_sq") < 0) {
    return DataLossError("optimizer states bundle is missing tensors");
  }
  LoadedOptimState state;
  UCP_ASSIGN_OR_RETURN(state.master, optim.ReadTensor("fp32_flat"));
  UCP_ASSIGN_OR_RETURN(state.exp_avg, optim.ReadTensor("exp_avg"));
  UCP_ASSIGN_OR_RETURN(state.exp_avg_sq, optim.ReadTensor("exp_avg_sq"));
  UCP_ASSIGN_OR_RETURN(state.steps, optim.meta().GetInt("steps_taken"));
  return state;
}

}  // namespace

Status LoadDistributedCheckpoint(const std::string& dir, const std::string& tag,
                                 RankTrainer& trainer) {
  Result<LoadedOptimState> local = LoadLocalState(dir, tag, trainer);
  // Collective agreement before installing state: ZeroOptimizer::LoadState all-gathers
  // across the DP group, so a rank that failed its local reads must fail *everyone* here —
  // otherwise healthy peers would strand inside the collective. Every rank reaches this
  // reduction regardless of its local outcome.
  double peer_failed =
      trainer.groups().world.AllReduceMaxScalar(local.ok() ? 0.0 : 1.0);
  if (!local.ok()) {
    return local.status();
  }
  if (peer_failed > 0.0) {
    return DataLossError("aborting load: a peer rank failed to read this checkpoint");
  }
  return trainer.optimizer().LoadState(local->master, local->exp_avg, local->exp_avg_sq,
                                       local->steps);
}

}  // namespace ucp
