#include "src/ckpt/foreign.h"

#include "src/common/fs.h"

#include "src/tensor/tensor_file.h"

namespace ucp {

std::string ForeignTagForIteration(int64_t iteration) {
  return "foreign_step" + std::to_string(iteration);
}

Status SaveForeignCheckpoint(const std::string& dir, RankTrainer& trainer,
                             int64_t iteration) {
  const ParallelConfig& s = trainer.config().strategy;
  if (s.tp != 1 || s.pp != 1 || s.sp != 1 || s.zero_stage != 0) {
    return FailedPreconditionError(
        "the foreign (DDP-style) format requires tp=pp=sp=1 and ZeRO stage 0, got " +
        s.ToString());
  }
  if (trainer.rank() == 0) {
    const std::string tag_dir = PathJoin(dir, ForeignTagForIteration(iteration));
    UCP_RETURN_IF_ERROR(MakeDirs(tag_dir));

    // Unflattened, consolidated state: slice every parameter's master/moment segment out of
    // the flat buffers.
    const ZeroOptimizer& opt = trainer.optimizer();
    Tensor master = opt.MasterState();
    Tensor exp_avg = opt.ExpAvgState();
    Tensor exp_avg_sq = opt.ExpAvgSqState();

    TensorBundle bundle;
    for (const FlatSegment& seg : opt.layout().segments) {
      bundle.Add("model." + seg.name,
                 Tensor::ViewOf(master, seg.offset, seg.shape).Clone());
      bundle.Add("optim.exp_avg." + seg.name,
                 Tensor::ViewOf(exp_avg, seg.offset, seg.shape).Clone());
      bundle.Add("optim.exp_avg_sq." + seg.name,
                 Tensor::ViewOf(exp_avg_sq, seg.offset, seg.shape).Clone());
    }
    JsonObject meta;
    meta["framework"] = "torchlight";  // the pretend third-party framework
    meta["model"] = trainer.config().model.ToJson();
    meta["iteration"] = iteration;
    meta["global_batch"] = trainer.config().global_batch;
    meta["data_seed"] = static_cast<int64_t>(trainer.config().data_seed);
    bundle.meta = Json(std::move(meta));
    UCP_RETURN_IF_ERROR(SaveBundle(PathJoin(tag_dir, "state_rank0.bundle"), bundle));
  }
  trainer.groups().world.Barrier();
  return OkStatus();
}

Result<ForeignMeta> ReadForeignMeta(const std::string& dir, const std::string& tag) {
  UCP_ASSIGN_OR_RETURN(
      BundleInfo info, StatBundle(PathJoin(PathJoin(dir, tag), "state_rank0.bundle")));
  ForeignMeta meta;
  if (!info.meta.Has("model")) {
    return DataLossError("foreign checkpoint missing model config");
  }
  UCP_ASSIGN_OR_RETURN(meta.model, ModelConfig::FromJson(info.meta.AsObject().at("model")));
  UCP_ASSIGN_OR_RETURN(meta.iteration, info.meta.GetInt("iteration"));
  UCP_ASSIGN_OR_RETURN(int64_t batch, info.meta.GetInt("global_batch"));
  meta.global_batch = static_cast<int>(batch);
  UCP_ASSIGN_OR_RETURN(int64_t seed, info.meta.GetInt("data_seed"));
  meta.data_seed = static_cast<uint64_t>(seed);
  return meta;
}

}  // namespace ucp
