// Native distributed checkpointing (the DeepSpeed-style layout UCP consumes).
//
// Directory layout for a checkpoint saved under tag `global_stepN`:
//
//   <dir>/latest                                        -- text file naming the newest tag
//   <dir>/<tag>/complete                                -- commit marker, written last; a tag
//                                                          without it is an aborted save and
//                                                          is skipped by every reader
//   <dir>/<tag>/checkpoint_meta.json                    -- model config, strategy, iteration
//   <dir>/<tag>/mp_rank_TT_PPP_sp_SS_model_states       -- per model-parallel rank (saved by
//                                                          its dp==0 member): parameter shard
//                                                          tensors at the compute dtype
//   <dir>/<tag>/zero_pp_rank_D_mp_rank_TT_PPP_sp_SS_optim_states
//                                                       -- per rank: flat fp32 master /
//                                                          exp_avg / exp_avg_sq partitions +
//                                                          the FlatLayout metadata
//
// Saving is crash-consistent: every shard is written into a `<tag>.staging` sibling
// directory (each file itself tmp-written, fsynced, renamed), the staging directory is
// atomically renamed to `<tag>`, and only then is the `complete` marker dropped and `latest`
// updated. A crash at any point leaves either no tag, ignorable staging debris, or an
// unmarked tag — never a tag that readers would trust. See docs/durability.md.
//
// All storage primitives (tag grammar, CheckpointMeta, commit/list/GC, the dir-based free
// functions) live in src/store/ behind the Store interface, so the same save runs against
// a local directory or a ucp_serverd daemon; this header re-exports them and adds the
// trainer-coupled collectives on top.
//
// Loading is strict, reproducing the Fig. 1 failure mode: resuming under a different
// parallelism strategy or world size fails with FAILED_PRECONDITION instead of silently
// mis-mapping state. UCP (src/ucp) is the sanctioned way to reshape checkpoints.

#ifndef UCP_SRC_CKPT_CHECKPOINT_H_
#define UCP_SRC_CKPT_CHECKPOINT_H_

#include <string>

#include "src/runtime/trainer.h"
#include "src/store/ckpt_meta.h"
#include "src/store/local_store.h"
#include "src/store/store.h"
#include "src/store/tags.h"

namespace ucp {

// Saves this rank's shard. Every rank of the run must call it (collective: ends with a
// world barrier; rank 0 additionally writes checkpoint_meta.json and updates the job's
// `latest` pointer). `job` selects the tag namespace inside a shared store. The Store
// overload is the canonical path; the dir overload wraps a LocalStore on `dir`.
Status SaveDistributedCheckpoint(Store& store, RankTrainer& trainer, int64_t iteration,
                                 const std::string& job = "");
Status SaveDistributedCheckpoint(const std::string& dir, RankTrainer& trainer,
                                 int64_t iteration, const std::string& job = "");

// The checkpoint metadata a save of `trainer` at `iteration` would commit.
CheckpointMeta MetaForSave(const RankTrainer& trainer, int64_t iteration);

// Strict native load: the trainer's model + strategy must match the checkpoint exactly.
Status LoadDistributedCheckpoint(const std::string& dir, const std::string& tag,
                                 RankTrainer& trainer);

}  // namespace ucp

#endif  // UCP_SRC_CKPT_CHECKPOINT_H_
