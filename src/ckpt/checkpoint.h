// Native distributed checkpointing (the DeepSpeed-style layout UCP consumes).
//
// Directory layout for a checkpoint saved under tag `global_stepN`:
//
//   <dir>/latest                                        -- text file naming the newest tag
//   <dir>/<tag>/complete                                -- commit marker, written last; a tag
//                                                          without it is an aborted save and
//                                                          is skipped by every reader
//   <dir>/<tag>/checkpoint_meta.json                    -- model config, strategy, iteration
//   <dir>/<tag>/mp_rank_TT_PPP_sp_SS_model_states       -- per model-parallel rank (saved by
//                                                          its dp==0 member): parameter shard
//                                                          tensors at the compute dtype
//   <dir>/<tag>/zero_pp_rank_D_mp_rank_TT_PPP_sp_SS_optim_states
//                                                       -- per rank: flat fp32 master /
//                                                          exp_avg / exp_avg_sq partitions +
//                                                          the FlatLayout metadata
//
// Saving is crash-consistent: every shard is written into a `<tag>.staging` sibling
// directory (each file itself tmp-written, fsynced, renamed), the staging directory is
// atomically renamed to `<tag>`, and only then is the `complete` marker dropped and `latest`
// updated. A crash at any point leaves either no tag, ignorable staging debris, or an
// unmarked tag — never a tag that readers would trust. See docs/durability.md.
//
// Loading is strict, reproducing the Fig. 1 failure mode: resuming under a different
// parallelism strategy or world size fails with FAILED_PRECONDITION instead of silently
// mis-mapping state. UCP (src/ucp) is the sanctioned way to reshape checkpoints.

#ifndef UCP_SRC_CKPT_CHECKPOINT_H_
#define UCP_SRC_CKPT_CHECKPOINT_H_

#include <string>

#include "src/runtime/trainer.h"

namespace ucp {

struct CheckpointMeta {
  ModelConfig model;
  ParallelConfig strategy;
  int64_t iteration = 0;
  int global_batch = 0;
  uint64_t data_seed = 0;
  DType compute_dtype = DType::kF32;

  Json ToJson() const;
  static Result<CheckpointMeta> FromJson(const Json& json);
};

// ---- Job namespaces --------------------------------------------------------------------
//
// Several training jobs may share one checkpoint store directory. Each job owns a tag
// namespace: the default job ("") keeps the historical `global_stepN` names and the plain
// `latest` pointer; job "j" tags are named `j.global_stepN` with a `latest.j` pointer.
// Every reader/retention/debris path below is namespace-scoped, so one job's GC, staging
// sweep, or resume can never touch another job's files (tests/soak_test.cc holds the
// regression matrix for this isolation).

// Job ids are [A-Za-z0-9_-], 1..64 chars. The empty id names the default namespace and is
// also valid (it is every pre-multi-job caller).
bool IsValidJobId(const std::string& job);

// "" for the default job, "<job>." otherwise.
std::string JobTagPrefix(const std::string& job);

// "latest" for the default job, "latest.<job>" otherwise.
std::string LatestFileName(const std::string& job);

// Parses a directory-entry name as a checkpoint tag: `global_stepN` or
// `<job>.global_stepN`. Returns true and fills job/iteration on match. Names with extra
// suffixes (".staging", ".ucp", ".quarantined") never match.
bool ParseTagName(const std::string& name, std::string* job, int64_t* iteration);

// Tag helpers ("global_step123" / "jobA.global_step123").
std::string TagForIteration(int64_t iteration);
std::string TagForIteration(const std::string& job, int64_t iteration);

// File-name helpers (shared with the UCP converter).
std::string ModelStatesFileName(int tp, int pp, int sp);
std::string OptimStatesFileName(int dp, int tp, int pp, int sp);

// Saves this rank's shard. Every rank of the run must call it (collective: ends with a
// world barrier; rank 0 additionally writes checkpoint_meta.json and updates the job's
// `latest` pointer). `job` selects the tag namespace inside a shared store.
Status SaveDistributedCheckpoint(const std::string& dir, RankTrainer& trainer,
                                 int64_t iteration, const std::string& job = "");

// The checkpoint metadata a save of `trainer` at `iteration` would commit.
CheckpointMeta MetaForSave(const RankTrainer& trainer, int64_t iteration);

// The commit sequence shared by the synchronous save and the async flusher: metadata into
// `staging`, wholesale replacement of any previous `<tag>` commit, atomic rename, marker,
// then the owning job's `latest` pointer (the namespace is parsed from the tag name).
// Single-caller (rank 0 / the flusher); `staging` must hold every shard.
Status CommitCheckpointTag(const std::string& dir, const std::string& tag,
                           const CheckpointMeta& meta);

// Name of the staging sibling a save of `tag` writes into before committing.
std::string StagingDirForTag(const std::string& dir, const std::string& tag);

// Removes stale `<tag>.staging` / `<tag>.ucp.staging` directories belonging to `job`'s
// namespace (debris of crashed or interrupted saves/conversions; never trusted by any
// reader). Returns the number removed. Call from one process only, with no save in flight
// for that job — other jobs sharing the store may keep flushing: their staging dirs are
// never touched (sweeping a concurrent job's in-flight staging would fail its commit
// rename and silently lose its checkpoint).
Result<int> CleanStagingDebris(const std::string& dir, const std::string& job = "");

// Reads the job's latest pointer (<dir>/latest, or <dir>/latest.<job>). This pointer is
// advisory — it is written *after* the commit marker, so a crash can leave it one save
// behind, and fsck quarantine can orphan it. Resume paths must use FindLatestValidTag
// instead; keep ReadLatestTag for diagnostics and for retention's "never delete what
// latest names" guard.
Result<std::string> ReadLatestTag(const std::string& dir, const std::string& job = "");

// True when the tag's `complete` commit marker exists (the save finished).
bool IsTagComplete(const std::string& dir, const std::string& tag);

// Newest committed tag in `job`'s namespace whose metadata parses — the tag a resume
// should trust. Incomplete or damaged-meta tags are skipped; kNotFound when no valid tag
// exists.
Result<std::string> FindLatestValidTag(const std::string& dir, const std::string& job = "");

// Fails with kDataLoss on a tag whose save never committed (missing `complete` marker).
Result<CheckpointMeta> ReadCheckpointMeta(const std::string& dir, const std::string& tag);

// Strict native load: the trainer's model + strategy must match the checkpoint exactly.
Status LoadDistributedCheckpoint(const std::string& dir, const std::string& tag,
                                 RankTrainer& trainer);

// All checkpoint tags in `job`'s namespace under `dir`, ascending iteration order.
Result<std::vector<std::string>> ListCheckpointTags(const std::string& dir,
                                                    const std::string& job = "");

// Every checkpoint tag under `dir` across all job namespaces (ascending by job id then
// iteration). For store-wide sweeps — fsck, tools — never for resume or retention, which
// must stay namespace-scoped.
Result<std::vector<std::string>> ListAllCheckpointTags(const std::string& dir);

// Retention: deletes the oldest checkpoints so at most `keep_last` tags remain. The tag
// named by `latest` is never deleted. Call from one process only (e.g. rank 0 after save).
Status PruneCheckpoints(const std::string& dir, int keep_last);

// Retention policy for steady-state training (`ucp_tool gc`, AsyncCheckpointOptions
// .keep_last). Unlike PruneCheckpoints it only counts *committed* tags toward the keep
// budget and never touches uncommitted tags or `.staging` debris — those belong to
// crashed-save recovery (fsck / the next save), and a tag mid-commit by a concurrent
// flusher must not be swept. Scoped to `job`'s namespace: tags and the `latest` guard of
// other jobs sharing the store are invisible to it. Never deletes the tag the job's
// `latest` names, nor the newest tag whose metadata still reads back — when every tag in
// the keep window is damaged, that older tag is the job's only resume point and outlives
// the window. Call from one process per job.
struct GcReport {
  std::vector<std::string> removed;  // committed tags deleted (ascending iteration)
  std::vector<std::string> kept;     // committed tags surviving
  std::string ToString() const;
};
Result<GcReport> GcCheckpoints(const std::string& dir, int keep_last, bool dry_run = false,
                               const std::string& job = "");

}  // namespace ucp

#endif  // UCP_SRC_CKPT_CHECKPOINT_H_
