// A deliberately different, "foreign framework" checkpoint layout (the paper's
// cross-framework scenario: checkpoints produced by HuggingFace-accelerate / PyTorch
// Lightning with a DeepSpeed backend). Shape of the substitute:
//
//   <dir>/foreign_step<N>/state_rank0.bundle
//
// One consolidated file in DDP style: per-parameter value tensors under "model.<name>" and
// per-parameter Adam moments under "optim.exp_avg.<name>" / "optim.exp_avg_sq.<name>" — no
// flat buffers, no partitions. Only plain data parallelism (tp = pp = sp = 1, ZeRO stage 0)
// can produce it; the UCP converter ingests it into the same atom-checkpoint format as
// native checkpoints, after which any target strategy can resume from it.

#ifndef UCP_SRC_CKPT_FOREIGN_H_
#define UCP_SRC_CKPT_FOREIGN_H_

#include <string>

#include "src/runtime/trainer.h"

namespace ucp {

std::string ForeignTagForIteration(int64_t iteration);

// Collective across the run's ranks; rank 0 writes the consolidated file. Requires
// tp = pp = sp = 1 and ZeRO stage 0 (full replicated state on rank 0).
Status SaveForeignCheckpoint(const std::string& dir, RankTrainer& trainer,
                             int64_t iteration);

struct ForeignMeta {
  ModelConfig model;
  int64_t iteration = 0;
  int global_batch = 0;
  uint64_t data_seed = 0;
};
Result<ForeignMeta> ReadForeignMeta(const std::string& dir, const std::string& tag);

}  // namespace ucp

#endif  // UCP_SRC_CKPT_FOREIGN_H_
