// Asynchronous checkpoint engine: snapshot-then-flush saves that overlap training.
//
// The synchronous save path (SaveDistributedCheckpoint) blocks every rank for the full
// serialize + write + fsync + commit sequence. This engine splits that into:
//
//   1. SNAPSHOT (blocking, per rank): RankCheckpointSnapshot::CaptureFrom deep-copies the
//      rank's optimizer partition and published parameters into buffers recycled from a
//      per-rank freelist — in steady state a pure host memcpy, the only part of a save
//      that stalls TrainIteration.
//   2. FLUSH (background): once every rank's snapshot for an iteration has arrived, a
//      flusher job on a ThreadPool serializes all shards into the tag's staged area through
//      the engine's Store (local: the standard `<tag>.staging` directory with batched
//      fsyncs; remote: chunked frames to ucp_serverd), then runs the PR 1 commit protocol
//      (rename -> `complete` marker -> `latest`). Commits land in save order, so `latest`
//      never regresses even with several saves in flight.
//
// Because the flusher — not the rank threads — performs the commit, the "every shard on
// disk" agreement is the engine's own gather (all world_size snapshots present) instead of
// the synchronous path's all-reduce. A crash at any point during a flush leaves exactly the
// states the commit protocol already tolerates: staging debris, an unmarked tag, or a
// committed tag with a stale `latest` (see docs/async_checkpointing.md).
//
// Backpressure: at most `max_in_flight` saves may be unresolved at once. A new SaveAsync
// beyond that either blocks (kBlock, default — bounds memory at max_in_flight+1 snapshot
// sets per rank) or cancels the oldest unresolved save (kDropOldest — training never
// stalls; the dropped tag is simply never committed, which resumes handle by design).

#ifndef UCP_SRC_CKPT_ASYNC_ENGINE_H_
#define UCP_SRC_CKPT_ASYNC_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/ckpt/async/snapshot.h"
#include "src/ckpt/checkpoint.h"
#include "src/common/thread_pool.h"

namespace ucp {

struct AsyncCheckpointOptions {
  // Background flusher threads. >1 overlaps shard serialization of distinct saves; the
  // commit order stays save order regardless.
  int flush_threads = 1;
  // Unresolved (snapshotted but not yet committed/failed/dropped) saves allowed before
  // backpressure applies. Bounds host memory: each in-flight save holds one snapshot set.
  int max_in_flight = 1;
  enum class Backpressure {
    kBlock,      // SaveAsync waits for a slot — never loses a checkpoint
    kDropOldest  // cancel the oldest in-flight save — never stalls training
  };
  Backpressure backpressure = Backpressure::kBlock;
  // Defer per-file fsyncs and issue them in one batch right before the commit rename
  // (ScopedFsyncBatch). Same durability, fewer stalls inside the write loop.
  bool batch_fsyncs = true;
  // Incremental flushes: shard files become chunk-manifest + content-addressed chunk
  // objects, and only chunks whose content changed since the last committed save are
  // written (unchanged chunks are recorded as by-reference extents against the parent
  // tag). Falls back to full-file writes when the backend can't do chunked staging (a v1
  // ucp_serverd). Read paths resolve manifests transparently, so loads/fsck/resume are
  // unchanged either way.
  bool incremental = false;
  // With incremental: LZ-compress each dirty chunk before it is written/shipped, with an
  // incompressibility bailout (a chunk that doesn't shrink by >= 1/16 stays raw).
  bool compress = false;
  // > 0: run GcCheckpoints(dir, keep_last) after every successful commit (scoped to
  // `job`'s namespace).
  int keep_last = 0;
  // Tag namespace inside a shared store: saves commit `<job>.global_stepN` tags and move
  // the `latest.<job>` pointer. Empty = the default namespace.
  std::string job;
  // Test hook: runs on the flusher thread after a save is picked up and before its shards
  // are written. Lets tests hold a flush open deterministically (snapshot isolation,
  // backpressure) without timing assumptions.
  std::function<void(int64_t iteration)> pre_flush_hook;
};

struct AsyncSaveStats {
  int64_t saves_started = 0;   // fully-gathered saves handed to the flusher
  int64_t commits = 0;
  int64_t drops = 0;           // saves cancelled by kDropOldest
  int64_t failures = 0;
  // Saves that failed with kUnavailable (store unreachable past the reconnect deadline):
  // skipped-and-retried-next-save rather than treated as a training-run abort — they do
  // not count as failures and do not poison WaitAll's sticky first error.
  int64_t skipped_unavailable = 0;
  double blocking_seconds = 0.0;      // total rank time spent inside SaveAsync
  double max_blocking_seconds = 0.0;  // worst single SaveAsync call
  double flush_seconds = 0.0;         // per committed save: first snapshot -> commit done
  int64_t bytes_flushed = 0;          // fp32 payload bytes across committed saves (logical)
  // Physical bytes handed to the store across committed saves. Equal to the serialized
  // logical size for full saves; with incremental+dedup (+compression) it is what actually
  // hit the disk or the wire.
  int64_t bytes_written = 0;
  int64_t chunks_flushed = 0;  // chunk objects physically written (incremental saves)
  int64_t chunks_deduped = 0;  // chunks skipped because identical content already existed
  int64_t last_committed_iteration = -1;
};

class AsyncCheckpointEngine {
 public:
  // One engine per checkpoint store, shared by every rank thread of the run. The dir form
  // wraps a LocalStore on `dir`; the Store form takes any backend (a RemoteStore here puts
  // the whole flush — staging, commit, GC — on the other side of the wire).
  AsyncCheckpointEngine(std::string dir, int world_size,
                        AsyncCheckpointOptions options = {});
  AsyncCheckpointEngine(std::shared_ptr<Store> store, int world_size,
                        AsyncCheckpointOptions options = {});
  // Drains in-flight saves (equivalent to WaitAll) before tearing down the pool.
  ~AsyncCheckpointEngine();

  AsyncCheckpointEngine(const AsyncCheckpointEngine&) = delete;
  AsyncCheckpointEngine& operator=(const AsyncCheckpointEngine&) = delete;

  // Collective across ranks (like SaveDistributedCheckpoint), but returns after this
  // rank's snapshot is captured — it blocks for backpressure plus the host copy only.
  // Flush/commit errors surface later through WaitAll / WaitForIteration.
  Status SaveAsync(RankTrainer& trainer, int64_t iteration);

  // Blocks until the save of `iteration` resolves and returns its outcome: OkStatus once
  // committed, kFailedPrecondition if it was dropped by backpressure, the flush error
  // otherwise. kNotFound if no save of that iteration was ever started.
  Status WaitForIteration(int64_t iteration);

  // Blocks until every in-flight save has resolved; returns the first flush/commit error
  // observed over the engine's lifetime (sticky), OkStatus when all commits landed.
  Status WaitAll();

  // After a rank failure, a save some ranks never reached stays gathering forever (its dead
  // peer will never call SaveAsync) and would park WaitAll / the destructor. Resolves every
  // not-fully-gathered save as abandoned (counted as a drop, not a failure) and returns how
  // many were abandoned; fully-gathered saves keep flushing — a checkpoint whose snapshots
  // all arrived is still perfectly good, and is typically exactly the one recovery wants.
  int AbandonIncomplete();

  AsyncSaveStats stats() const;
  Store& store() const { return *store_; }

 private:
  struct PendingSave {
    int64_t iteration = 0;
    std::string tag;
    std::vector<std::unique_ptr<RankCheckpointSnapshot>> snaps;
    int arrived = 0;
    CheckpointMeta meta;
    bool meta_set = false;
    bool cancelled = false;   // kDropOldest victim; flusher cleans up
    bool committing = false;  // commit started — past the point of no return
    bool resolved = false;    // committed, failed, or dropped
    Status result;
    std::chrono::steady_clock::time_point started;
    // Incremental-flush bookkeeping: per-shard chunk digests of this save (promoted to the
    // engine's parent table once the commit lands) and the aggregate write stats.
    bool chunked = false;
    std::map<std::string, std::vector<uint64_t>> digests;
    ChunkedWriteStats chunk_stats;
  };

  // All *Locked members require mu_.
  std::shared_ptr<PendingSave> FindLocked(int64_t iteration);
  int ActiveCountLocked() const;
  bool DropOldestLocked();
  void ResolveLocked(const std::shared_ptr<PendingSave>& save, Status result);
  void Flush(std::shared_ptr<PendingSave> save);
  Status FlushShards(const std::shared_ptr<PendingSave>& save);

  const std::shared_ptr<Store> store_;
  const int world_size_;
  const AsyncCheckpointOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<PendingSave>> inflight_;  // save order; pruned on resolution
  std::map<int64_t, Status> outcomes_;                 // resolved saves, for WaitForIteration
  std::vector<std::vector<std::unique_ptr<RankCheckpointSnapshot>>> free_snaps_;
  // Dirty-chunk tracking (incremental mode): the chunk digests of every shard file in the
  // last *committed* save, keyed by store-relative name, plus that save's tag. The flusher
  // snapshots this table under mu_ to count inherited chunks and name the manifest's
  // parent; it is replaced wholesale when a later commit lands (ordered commits keep it
  // monotonic). Dedup itself never trusts this table — presence in the chunk index decides
  // what is written.
  std::string parent_tag_;
  std::map<std::string, std::vector<uint64_t>> parent_digests_;
  Status first_error_;
  AsyncSaveStats stats_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ucp

#endif  // UCP_SRC_CKPT_ASYNC_ENGINE_H_
