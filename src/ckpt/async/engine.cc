#include "src/ckpt/async/engine.h"

#include <algorithm>
#include <utility>

#include "src/common/fs.h"
#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/tensor/chunk_digest.h"

namespace ucp {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Global mirror of the per-engine AsyncSaveStats: the struct getter keeps engine-local
// semantics, the registry aggregates across engines for `ucp_tool metrics` and benches.
struct AsyncMetrics {
  obs::Counter& started = obs::MetricsRegistry::Global().GetCounter("save.async.started");
  obs::Counter& commits = obs::MetricsRegistry::Global().GetCounter("save.async.commits");
  obs::Counter& failures = obs::MetricsRegistry::Global().GetCounter("save.async.failures");
  obs::Counter& drops = obs::MetricsRegistry::Global().GetCounter("save.async.drops");
  obs::Counter& skipped_unavailable =
      obs::MetricsRegistry::Global().GetCounter("save.async.skipped_unavailable");
  obs::Counter& bytes_flushed =
      obs::MetricsRegistry::Global().GetCounter("save.async.bytes_flushed");
  obs::Counter& bytes_written =
      obs::MetricsRegistry::Global().GetCounter("save.async.bytes_written");
  obs::Counter& chunks_flushed =
      obs::MetricsRegistry::Global().GetCounter("save.async.chunks_flushed");
  obs::Counter& chunks_deduped =
      obs::MetricsRegistry::Global().GetCounter("save.async.chunks_deduped");
  obs::Histogram& block_seconds =
      obs::MetricsRegistry::Global().GetHistogram("save.async.block_seconds");
  obs::Histogram& flush_seconds =
      obs::MetricsRegistry::Global().GetHistogram("save.async.flush_seconds");
  obs::Gauge& last_committed =
      obs::MetricsRegistry::Global().GetGauge("save.async.last_committed_iteration");

  static AsyncMetrics& Get() {
    static AsyncMetrics* m = new AsyncMetrics();
    return *m;
  }
};

}  // namespace

AsyncCheckpointEngine::AsyncCheckpointEngine(std::string dir, int world_size,
                                             AsyncCheckpointOptions options)
    : AsyncCheckpointEngine(std::make_shared<LocalStore>(std::move(dir)), world_size,
                            std::move(options)) {}

AsyncCheckpointEngine::AsyncCheckpointEngine(std::shared_ptr<Store> store, int world_size,
                                             AsyncCheckpointOptions options)
    : store_(std::move(store)), world_size_(world_size), options_(std::move(options)) {
  UCP_CHECK_GE(world_size_, 1);
  UCP_CHECK_GE(options_.max_in_flight, 1);
  free_snaps_.resize(static_cast<size_t>(world_size_));
  // At least one worker: a zero-thread pool would run flushes inline on the rank thread
  // that completes the gather, which defeats the engine's purpose.
  pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max(1, options_.flush_threads)));
}

AsyncCheckpointEngine::~AsyncCheckpointEngine() {
  Status drained = WaitAll();
  if (!drained.ok()) {
    UCP_LOG(Warning) << "async checkpoint engine shut down with a failed save: "
                     << drained.ToString();
  }
  pool_.reset();
}

std::shared_ptr<AsyncCheckpointEngine::PendingSave> AsyncCheckpointEngine::FindLocked(
    int64_t iteration) {
  for (const auto& save : inflight_) {
    if (save->iteration == iteration) {
      return save;
    }
  }
  return nullptr;
}

int AsyncCheckpointEngine::ActiveCountLocked() const {
  int active = 0;
  for (const auto& save : inflight_) {
    if (!save->resolved && !save->cancelled) {
      ++active;
    }
  }
  return active;
}

bool AsyncCheckpointEngine::DropOldestLocked() {
  for (const auto& save : inflight_) {
    // Only a fully-gathered save can be dropped: peers are still going to call SaveAsync
    // for a gathering one, and a committing one is past the point of no return.
    if (!save->resolved && !save->cancelled && !save->committing &&
        save->arrived == world_size_) {
      save->cancelled = true;
      cv_.notify_all();  // its flusher may be parked at the commit ticket
      return true;
    }
  }
  return false;
}

void AsyncCheckpointEngine::ResolveLocked(const std::shared_ptr<PendingSave>& save,
                                          Status result) {
  save->result = result;
  save->resolved = true;
  outcomes_[save->iteration] = result;
  if (!result.ok() && !save->cancelled) {
    if (result.code() == StatusCode::kUnavailable) {
      // The store was unreachable past the client's reconnect deadline. That is a
      // property of the moment, not of the run: the save is skipped (resume falls back
      // to the previous committed tag) and the next periodic save retries the daemon.
      // It neither counts as a failure nor poisons first_error_ — a transient partition
      // must not abort training.
      ++stats_.skipped_unavailable;
      AsyncMetrics::Get().skipped_unavailable.Add(1);
    } else {
      ++stats_.failures;
      AsyncMetrics::Get().failures.Add(1);
      if (first_error_.ok()) {
        first_error_ = result;
      }
    }
  }
  // Recycle the snapshot buffers and drop the entry from the in-flight window.
  for (int r = 0; r < world_size_; ++r) {
    if (save->snaps[static_cast<size_t>(r)] != nullptr) {
      free_snaps_[static_cast<size_t>(r)].push_back(
          std::move(save->snaps[static_cast<size_t>(r)]));
    }
  }
  inflight_.erase(std::find(inflight_.begin(), inflight_.end(), save));
  cv_.notify_all();
}

Status AsyncCheckpointEngine::SaveAsync(RankTrainer& trainer, int64_t iteration) {
  UCP_TRACE_NAMED_SPAN(span, "save.async.enqueue");
  UCP_TRACE_SPAN_ARG_I(span, "iteration", iteration);
  const auto t0 = std::chrono::steady_clock::now();
  const int rank = trainer.rank();
  UCP_CHECK_LT(rank, world_size_);

  std::shared_ptr<PendingSave> save;
  std::unique_ptr<RankCheckpointSnapshot> buf;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      save = FindLocked(iteration);
      if (save != nullptr) {
        break;  // a peer already opened this save; backpressure was its problem
      }
      if (ActiveCountLocked() < options_.max_in_flight) {
        save = std::make_shared<PendingSave>();
        save->iteration = iteration;
        save->tag = TagForIteration(options_.job, iteration);
        save->snaps.resize(static_cast<size_t>(world_size_));
        save->started = t0;
        inflight_.push_back(save);
        break;
      }
      if (options_.backpressure == AsyncCheckpointOptions::Backpressure::kDropOldest &&
          DropOldestLocked()) {
        ++stats_.drops;
        AsyncMetrics::Get().drops.Add(1);
        continue;  // the drop freed a slot immediately; cleanup happens on the flusher
      }
      cv_.wait(lock);
    }
    auto& freelist = free_snaps_[static_cast<size_t>(rank)];
    if (!freelist.empty()) {
      buf = std::move(freelist.back());
      freelist.pop_back();
    }
  }

  if (buf == nullptr) {
    buf = std::make_unique<RankCheckpointSnapshot>();
  }
  {
    UCP_TRACE_SPAN("save.async.snapshot");
    buf->CaptureFrom(trainer);  // the only heavy work on the rank thread
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!save->meta_set) {
      save->meta = MetaForSave(trainer, iteration);
      save->meta_set = true;
    }
    save->snaps[static_cast<size_t>(rank)] = std::move(buf);
    if (++save->arrived == world_size_) {
      ++stats_.saves_started;
      AsyncMetrics::Get().started.Add(1);
      // Gathering saves are never drop targets, so the save cannot be cancelled yet; the
      // flusher owns all cancellation handling from here on.
      pool_->Submit([this, save] { Flush(save); });
    }
    const double blocked = SecondsSince(t0);
    stats_.blocking_seconds += blocked;
    stats_.max_blocking_seconds = std::max(stats_.max_blocking_seconds, blocked);
    AsyncMetrics::Get().block_seconds.Observe(blocked);
  }
  return OkStatus();
}

Status AsyncCheckpointEngine::FlushShards(const std::shared_ptr<PendingSave>& save) {
  UCP_TRACE_SPAN_ARGS("save.async.write_shards", ::ucp::obs::TraceArgs().S("tag", save->tag));
  UCP_RETURN_IF_ERROR(store_->ResetTagStaging(save->tag));
  // The batch applies to LocalStore writers (which stage through WriteFileAtomic on this
  // thread); remote writers fsync server-side at commit.
  ScopedFsyncBatch batch;
  UCP_ASSIGN_OR_RETURN(std::unique_ptr<StoreWriter> writer,
                       store_->OpenTagForWrite(save->tag));
  // Chunked staging needs backend support (LocalStore always; RemoteStore only against a
  // v2 daemon) — otherwise an incremental engine silently degrades to full-file writes.
  const bool chunked = options_.incremental && writer->SupportsChunked();
  std::string parent_tag;
  std::map<std::string, std::vector<uint64_t>> parent;
  if (chunked) {
    std::lock_guard<std::mutex> lock(mu_);
    parent_tag = parent_tag_;
    parent = parent_digests_;
  }
  for (int r = 0; r < world_size_; ++r) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (save->cancelled) {
        return FailedPreconditionError("save " + save->tag + " dropped by backpressure");
      }
    }
    const RankCheckpointSnapshot& snap = *save->snaps[static_cast<size_t>(r)];
    if (!chunked) {
      UCP_RETURN_IF_ERROR(WriteSnapshotShards(*writer, snap));
    } else {
      UCP_ASSIGN_OR_RETURN(std::vector<SnapshotShard> shards,
                           SerializeSnapshotShards(snap));
      for (SnapshotShard& shard : shards) {
        std::vector<uint64_t> digests =
            ComputeChunkDigests(shard.bytes.data(), shard.bytes.size());
        // Inherited count: positional digest matches against the parent save's shard of
        // the same name. Manifest provenance only — the writer re-checks actual presence
        // in the chunk index before skipping anything.
        uint64_t inherited = 0;
        auto it = parent.find(shard.rel);
        if (it != parent.end()) {
          const size_t n = std::min(digests.size(), it->second.size());
          for (size_t i = 0; i < n; ++i) {
            inherited += digests[i] == it->second[i] ? 1 : 0;
          }
        }
        UCP_ASSIGN_OR_RETURN(
            ChunkedWriteStats shard_stats,
            writer->WriteFileChunked(shard.rel, shard.bytes.data(), shard.bytes.size(),
                                     digests, options_.compress, inherited));
        save->chunk_stats.Add(shard_stats);
        save->digests[shard.rel] = std::move(digests);
      }
    }
    if (!options_.batch_fsyncs) {
      UCP_RETURN_IF_ERROR(batch.SyncAll());  // eager mode: flush after every rank's shards
    }
  }
  if (chunked) {
    UCP_RETURN_IF_ERROR(writer->FinalizeManifest(parent_tag));
    save->chunked = true;
  }
  // The batch point: every shard's data reaches the platter before the commit rename.
  return batch.SyncAll();
}

void AsyncCheckpointEngine::Flush(std::shared_ptr<PendingSave> save) {
  UCP_TRACE_NAMED_SPAN(span, "save.async.flush");
  UCP_TRACE_SPAN_ARG_S(span, "tag", save->tag);
  if (options_.pre_flush_hook) {
    options_.pre_flush_hook(save->iteration);
  }

  Status flushed = FlushShards(save);

  std::unique_lock<std::mutex> lock(mu_);
  if (!flushed.ok()) {
    lock.unlock();
    store_->AbortTag(save->tag).ok();  // best effort: keep the tag retryable
    lock.lock();
    ResolveLocked(save, save->cancelled
                            ? FailedPreconditionError("save " + save->tag +
                                                      " dropped by backpressure")
                            : flushed);
    return;
  }

  // Ordered commit: wait until every earlier save has resolved, so `latest` and the tag
  // sequence advance monotonically even with several flushes in flight. A cancellation
  // while parked here aborts the wait.
  cv_.wait(lock, [&] {
    if (save->cancelled) {
      return true;
    }
    for (const auto& other : inflight_) {
      if (other.get() == save.get()) {
        return true;
      }
      if (!other->resolved) {
        return false;
      }
    }
    return true;  // unreachable: `save` is always in the deque here
  });
  if (save->cancelled) {
    lock.unlock();
    store_->AbortTag(save->tag).ok();
    lock.lock();
    ResolveLocked(save, FailedPreconditionError("save " + save->tag +
                                                " dropped by backpressure"));
    return;
  }
  save->committing = true;
  const CheckpointMeta meta = save->meta;
  lock.unlock();

  Status committed = store_->CommitTag(save->tag, meta.ToJson().Dump(2));
  if (committed.ok() && options_.keep_last > 0) {
    // Retention rides the commit ticket (no other commit can interleave), so a concurrent
    // flusher's staging/rename is never swept mid-flight.
    Result<GcReport> gc = store_->Gc(options_.job, options_.keep_last, /*dry_run=*/false);
    if (!gc.ok()) {
      UCP_LOG(Warning) << "post-commit gc failed: " << gc.status().ToString();
    }
  }

  lock.lock();
  if (committed.ok()) {
    ++stats_.commits;
    stats_.last_committed_iteration =
        std::max(stats_.last_committed_iteration, save->iteration);
    const double flush_s = SecondsSince(save->started);
    stats_.flush_seconds += flush_s;
    uint64_t save_bytes = 0;
    for (int r = 0; r < world_size_; ++r) {
      save_bytes += save->snaps[static_cast<size_t>(r)]->bytes;
    }
    stats_.bytes_flushed += save_bytes;
    AsyncMetrics& am = AsyncMetrics::Get();
    am.commits.Add(1);
    am.bytes_flushed.Add(save_bytes);
    if (save->chunked) {
      stats_.bytes_written += static_cast<int64_t>(save->chunk_stats.bytes_written);
      const int64_t flushed_chunks = static_cast<int64_t>(
          save->chunk_stats.chunks_total - save->chunk_stats.chunks_deduped);
      stats_.chunks_flushed += flushed_chunks;
      stats_.chunks_deduped += static_cast<int64_t>(save->chunk_stats.chunks_deduped);
      am.bytes_written.Add(save->chunk_stats.bytes_written);
      am.chunks_flushed.Add(flushed_chunks);
      am.chunks_deduped.Add(save->chunk_stats.chunks_deduped);
      // This save is now the committed baseline: later flushes diff against its digests.
      parent_tag_ = save->tag;
      parent_digests_ = std::move(save->digests);
    } else {
      stats_.bytes_written += save_bytes;
      AsyncMetrics::Get().bytes_written.Add(save_bytes);
    }
    am.flush_seconds.Observe(flush_s);
    am.last_committed.Max(save->iteration);
  }
  ResolveLocked(save, committed);
}

Status AsyncCheckpointEngine::WaitForIteration(int64_t iteration) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return FindLocked(iteration) == nullptr; });
  auto it = outcomes_.find(iteration);
  if (it == outcomes_.end()) {
    return NotFoundError("no async save was started for iteration " +
                         std::to_string(iteration));
  }
  return it->second;
}

int AsyncCheckpointEngine::AbandonIncomplete() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<PendingSave>> victims;
  for (const auto& save : inflight_) {
    // No flusher job exists yet for a gathering save (submission happens on the last
    // arrival), so resolving it here races with nothing.
    if (!save->resolved && save->arrived < world_size_) {
      victims.push_back(save);
    }
  }
  for (const auto& save : victims) {
    save->cancelled = true;  // keeps ResolveLocked from counting this as a flush failure
    ResolveLocked(save, FailedPreconditionError(
                            "save " + save->tag +
                            " abandoned: gather incomplete after rank failure"));
    ++stats_.drops;
    AsyncMetrics::Get().drops.Add(1);
  }
  return static_cast<int>(victims.size());
}

Status AsyncCheckpointEngine::WaitAll() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return inflight_.empty(); });
  return first_error_;
}

AsyncSaveStats AsyncCheckpointEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ucp
