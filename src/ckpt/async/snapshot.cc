#include "src/ckpt/async/snapshot.h"

#include <utility>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"

namespace ucp {

namespace {

// Copies `src` into slot `index` of `bundle`, reusing the existing allocation when the
// slot already holds a tensor of the same name and size (the steady-state path).
void CopyIntoSlot(TensorBundle& bundle, size_t index, const std::string& name,
                  const Tensor& src) {
  if (index < bundle.tensors.size() && bundle.tensors[index].first == name &&
      bundle.tensors[index].second.numel() == src.numel() &&
      bundle.tensors[index].second.shape() == src.shape()) {
    bundle.tensors[index].second.CopyFrom(src);
    return;
  }
  bundle.tensors.resize(index);
  bundle.Add(name, src.Clone());
}

}  // namespace

void RankCheckpointSnapshot::CaptureFrom(const RankTrainer& trainer) {
  coord = trainer.coord();
  compute_dtype = trainer.config().compute_dtype;
  bytes = 0;

  const ZeroOptimizer& opt = trainer.optimizer();
  CopyIntoSlot(optim, 0, "fp32_flat", opt.master_state_ref());
  CopyIntoSlot(optim, 1, "exp_avg", opt.exp_avg_ref());
  CopyIntoSlot(optim, 2, "exp_avg_sq", opt.exp_avg_sq_ref());
  bytes += 3 * opt.master_state_ref().numel() * static_cast<int64_t>(sizeof(float));
  JsonObject optim_meta;
  optim_meta["flat_layout"] = opt.layout().ToJson();
  optim_meta["zero_stage"] = opt.zero_stage();
  optim_meta["steps_taken"] = opt.steps_taken();
  optim_meta["dp_index"] = coord.dp;
  optim_meta["tp_index"] = coord.tp;
  optim_meta["pp_index"] = coord.pp;
  optim_meta["sp_index"] = coord.sp;
  optim.meta = Json(std::move(optim_meta));

  // Model states mirror the synchronous save: one file per model-parallel rank, written by
  // its dp==0 member; ZeRO-3 carries no parameter payloads (the flats are authoritative).
  has_model_states = coord.dp == 0;
  if (has_model_states) {
    size_t slot = 0;
    if (trainer.config().strategy.zero_stage < 3) {
      for (const ParamPtr& p : trainer.model().store().params()) {
        if (p->tied_secondary) {
          continue;  // canonical copy lives on the first stage
        }
        CopyIntoSlot(model_states, slot++, p->info.name, p->value);
        bytes += p->value.numel() * static_cast<int64_t>(sizeof(float));
      }
    }
    model_states.tensors.resize(slot);
    JsonObject ms_meta;
    ms_meta["tp_index"] = coord.tp;
    ms_meta["pp_index"] = coord.pp;
    ms_meta["sp_index"] = coord.sp;
    ms_meta["zero_stage"] = opt.zero_stage();
    model_states.meta = Json(std::move(ms_meta));
  }
}

Result<std::vector<SnapshotShard>> SerializeSnapshotShards(
    const RankCheckpointSnapshot& snap) {
  std::vector<SnapshotShard> shards;
  {
    SnapshotShard shard;
    shard.rel =
        OptimStatesFileName(snap.coord.dp, snap.coord.tp, snap.coord.pp, snap.coord.sp);
    UCP_ASSIGN_OR_RETURN(shard.bytes, SerializeBundle(snap.optim));
    shards.push_back(std::move(shard));
  }
  if (snap.has_model_states) {
    SnapshotShard shard;
    shard.rel = ModelStatesFileName(snap.coord.tp, snap.coord.pp, snap.coord.sp);
    UCP_ASSIGN_OR_RETURN(shard.bytes,
                         SerializeBundle(snap.model_states, snap.compute_dtype));
    shards.push_back(std::move(shard));
  }
  return shards;
}

Status WriteSnapshotShards(StoreWriter& writer, const RankCheckpointSnapshot& snap) {
  UCP_ASSIGN_OR_RETURN(std::vector<SnapshotShard> shards, SerializeSnapshotShards(snap));
  for (const SnapshotShard& shard : shards) {
    UCP_RETURN_IF_ERROR(writer.WriteFile(shard.rel, shard.bytes.data(),
                                         shard.bytes.size()));
  }
  return OkStatus();
}

Status WriteSnapshotShards(const std::string& staging,
                           const RankCheckpointSnapshot& snap) {
  UCP_RETURN_IF_ERROR(SaveBundle(
      PathJoin(staging,
               OptimStatesFileName(snap.coord.dp, snap.coord.tp, snap.coord.pp,
                                   snap.coord.sp)),
      snap.optim));
  if (snap.has_model_states) {
    UCP_RETURN_IF_ERROR(SaveBundle(
        PathJoin(staging,
                 ModelStatesFileName(snap.coord.tp, snap.coord.pp, snap.coord.sp)),
        snap.model_states, snap.compute_dtype));
  }
  return OkStatus();
}

}  // namespace ucp
