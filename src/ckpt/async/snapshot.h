// Host-side snapshot of one rank's checkpoint state — the part of an asynchronous save
// that must happen while the rank is paused. A snapshot deep-copies the optimizer
// partition (and, for the dp==0 member of each model-parallel rank, the published
// parameter values) into buffers owned by the snapshot itself, so the training step that
// follows can mutate the live tensors freely while a background flusher serializes the
// copy. CaptureFrom reuses the previous capture's buffers when shapes match, so in steady
// state (the engine's double-buffered freelist) a snapshot is pure memcpy: no allocation,
// no serialization, no I/O.

#ifndef UCP_SRC_CKPT_ASYNC_SNAPSHOT_H_
#define UCP_SRC_CKPT_ASYNC_SNAPSHOT_H_

#include <string>
#include <vector>

#include "src/runtime/trainer.h"
#include "src/store/store.h"
#include "src/tensor/tensor_file.h"

namespace ucp {

struct RankCheckpointSnapshot {
  RankCoord coord;
  DType compute_dtype = DType::kF32;
  // Exactly what the rank's shard files carry (same names/meta as the synchronous save).
  TensorBundle optim;
  bool has_model_states = false;
  TensorBundle model_states;
  // Captured payload bytes (fp32, before any storage-dtype conversion) — for stats.
  int64_t bytes = 0;

  // Copies the rank's current state into this snapshot, reusing existing buffers when the
  // layout is unchanged. Blocks only for the host-to-host copy.
  void CaptureFrom(const RankTrainer& trainer);
};

// One serialized shard file of a snapshot: the store-relative name and the exact bytes the
// synchronous save would have written. The incremental flusher works from this form — it
// needs the serialized bytes in hand to digest them chunk by chunk before deciding what to
// ship.
struct SnapshotShard {
  std::string rel;
  std::vector<uint8_t> bytes;
};

// Serializes a captured snapshot into its shard files (standard shard names, same bytes as
// the synchronous save) without touching any store.
Result<std::vector<SnapshotShard>> SerializeSnapshotShards(
    const RankCheckpointSnapshot& snap);

// Serializes one captured snapshot into a store's staged tag using the standard shard file
// names. Shared by the synchronous save path and the async flusher; no collectives. The
// shard bytes are built in memory (SerializeSnapshotShards) and handed to the writer — the
// local backend does the same tmp-write/fsync/rename it always did, the remote backend
// streams them to ucp_serverd.
Status WriteSnapshotShards(StoreWriter& writer, const RankCheckpointSnapshot& snap);
// Direct-FS form (tests, tools): writes into an existing staging directory.
Status WriteSnapshotShards(const std::string& staging, const RankCheckpointSnapshot& snap);

}  // namespace ucp

#endif  // UCP_SRC_CKPT_ASYNC_SNAPSHOT_H_
