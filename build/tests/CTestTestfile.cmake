# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/comm_test[1]_include.cmake")
include("/root/repo/build/tests/nn_ops_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/zero_test[1]_include.cmake")
include("/root/repo/build/tests/trainer_test[1]_include.cmake")
include("/root/repo/build/tests/ckpt_test[1]_include.cmake")
include("/root/repo/build/tests/patterns_test[1]_include.cmake")
include("/root/repo/build/tests/ucp_ops_test[1]_include.cmake")
include("/root/repo/build/tests/ucp_integration_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
