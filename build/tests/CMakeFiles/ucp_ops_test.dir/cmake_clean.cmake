file(REMOVE_RECURSE
  "CMakeFiles/ucp_ops_test.dir/ucp_ops_test.cc.o"
  "CMakeFiles/ucp_ops_test.dir/ucp_ops_test.cc.o.d"
  "ucp_ops_test"
  "ucp_ops_test.pdb"
  "ucp_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
