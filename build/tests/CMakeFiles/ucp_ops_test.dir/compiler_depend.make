# Empty compiler generated dependencies file for ucp_ops_test.
# This may be replaced when dependencies are built.
