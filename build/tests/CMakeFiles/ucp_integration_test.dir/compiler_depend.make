# Empty compiler generated dependencies file for ucp_integration_test.
# This may be replaced when dependencies are built.
