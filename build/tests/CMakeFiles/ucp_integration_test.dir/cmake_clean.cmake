file(REMOVE_RECURSE
  "CMakeFiles/ucp_integration_test.dir/ucp_integration_test.cc.o"
  "CMakeFiles/ucp_integration_test.dir/ucp_integration_test.cc.o.d"
  "ucp_integration_test"
  "ucp_integration_test.pdb"
  "ucp_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
