# Empty dependencies file for ucp_tool.
# This may be replaced when dependencies are built.
