file(REMOVE_RECURSE
  "CMakeFiles/ucp_tool.dir/ucp_tool.cc.o"
  "CMakeFiles/ucp_tool.dir/ucp_tool.cc.o.d"
  "ucp_tool"
  "ucp_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
