file(REMOVE_RECURSE
  "CMakeFiles/fig06_table3_single_source_multi_target.dir/fig06_table3_single_source_multi_target.cc.o"
  "CMakeFiles/fig06_table3_single_source_multi_target.dir/fig06_table3_single_source_multi_target.cc.o.d"
  "fig06_table3_single_source_multi_target"
  "fig06_table3_single_source_multi_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_table3_single_source_multi_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
