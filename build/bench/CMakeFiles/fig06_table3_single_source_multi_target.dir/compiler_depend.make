# Empty compiler generated dependencies file for fig06_table3_single_source_multi_target.
# This may be replaced when dependencies are built.
