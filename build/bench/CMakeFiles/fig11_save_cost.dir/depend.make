# Empty dependencies file for fig11_save_cost.
# This may be replaced when dependencies are built.
