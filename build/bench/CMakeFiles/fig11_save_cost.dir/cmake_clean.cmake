file(REMOVE_RECURSE
  "CMakeFiles/fig11_save_cost.dir/fig11_save_cost.cc.o"
  "CMakeFiles/fig11_save_cost.dir/fig11_save_cost.cc.o.d"
  "fig11_save_cost"
  "fig11_save_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_save_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
