# Empty dependencies file for ablation_convert_threads.
# This may be replaced when dependencies are built.
