file(REMOVE_RECURSE
  "CMakeFiles/ablation_convert_threads.dir/ablation_convert_threads.cc.o"
  "CMakeFiles/ablation_convert_threads.dir/ablation_convert_threads.cc.o.d"
  "ablation_convert_threads"
  "ablation_convert_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_convert_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
