# Empty compiler generated dependencies file for fig10_moe.
# This may be replaced when dependencies are built.
