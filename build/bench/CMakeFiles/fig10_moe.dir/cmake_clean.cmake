file(REMOVE_RECURSE
  "CMakeFiles/fig10_moe.dir/fig10_moe.cc.o"
  "CMakeFiles/fig10_moe.dir/fig10_moe.cc.o.d"
  "fig10_moe"
  "fig10_moe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_moe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
