# Empty dependencies file for fig12_load_cost.
# This may be replaced when dependencies are built.
