# Empty compiler generated dependencies file for fig07_multi_source_single_target.
# This may be replaced when dependencies are built.
