file(REMOVE_RECURSE
  "CMakeFiles/fig07_multi_source_single_target.dir/fig07_multi_source_single_target.cc.o"
  "CMakeFiles/fig07_multi_source_single_target.dir/fig07_multi_source_single_target.cc.o.d"
  "fig07_multi_source_single_target"
  "fig07_multi_source_single_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_multi_source_single_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
