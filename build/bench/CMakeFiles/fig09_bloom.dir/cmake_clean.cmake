file(REMOVE_RECURSE
  "CMakeFiles/fig09_bloom.dir/fig09_bloom.cc.o"
  "CMakeFiles/fig09_bloom.dir/fig09_bloom.cc.o.d"
  "fig09_bloom"
  "fig09_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
