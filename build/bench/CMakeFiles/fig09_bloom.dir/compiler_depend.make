# Empty compiler generated dependencies file for fig09_bloom.
# This may be replaced when dependencies are built.
