file(REMOVE_RECURSE
  "CMakeFiles/fig08_llama.dir/fig08_llama.cc.o"
  "CMakeFiles/fig08_llama.dir/fig08_llama.cc.o.d"
  "fig08_llama"
  "fig08_llama.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_llama.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
