# Empty compiler generated dependencies file for fig08_llama.
# This may be replaced when dependencies are built.
