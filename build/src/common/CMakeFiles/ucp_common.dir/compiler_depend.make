# Empty compiler generated dependencies file for ucp_common.
# This may be replaced when dependencies are built.
