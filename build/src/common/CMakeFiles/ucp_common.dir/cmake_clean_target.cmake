file(REMOVE_RECURSE
  "libucp_common.a"
)
