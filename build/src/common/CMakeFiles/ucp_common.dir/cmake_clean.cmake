file(REMOVE_RECURSE
  "CMakeFiles/ucp_common.dir/bytes.cc.o"
  "CMakeFiles/ucp_common.dir/bytes.cc.o.d"
  "CMakeFiles/ucp_common.dir/crc32.cc.o"
  "CMakeFiles/ucp_common.dir/crc32.cc.o.d"
  "CMakeFiles/ucp_common.dir/fs.cc.o"
  "CMakeFiles/ucp_common.dir/fs.cc.o.d"
  "CMakeFiles/ucp_common.dir/json.cc.o"
  "CMakeFiles/ucp_common.dir/json.cc.o.d"
  "CMakeFiles/ucp_common.dir/logging.cc.o"
  "CMakeFiles/ucp_common.dir/logging.cc.o.d"
  "CMakeFiles/ucp_common.dir/rng.cc.o"
  "CMakeFiles/ucp_common.dir/rng.cc.o.d"
  "CMakeFiles/ucp_common.dir/status.cc.o"
  "CMakeFiles/ucp_common.dir/status.cc.o.d"
  "CMakeFiles/ucp_common.dir/strings.cc.o"
  "CMakeFiles/ucp_common.dir/strings.cc.o.d"
  "CMakeFiles/ucp_common.dir/thread_pool.cc.o"
  "CMakeFiles/ucp_common.dir/thread_pool.cc.o.d"
  "libucp_common.a"
  "libucp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
