file(REMOVE_RECURSE
  "libucp_model.a"
)
