
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/attention.cc" "src/model/CMakeFiles/ucp_model.dir/attention.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/attention.cc.o.d"
  "/root/repo/src/model/block.cc" "src/model/CMakeFiles/ucp_model.dir/block.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/block.cc.o.d"
  "/root/repo/src/model/config.cc" "src/model/CMakeFiles/ucp_model.dir/config.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/config.cc.o.d"
  "/root/repo/src/model/inventory.cc" "src/model/CMakeFiles/ucp_model.dir/inventory.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/inventory.cc.o.d"
  "/root/repo/src/model/linear.cc" "src/model/CMakeFiles/ucp_model.dir/linear.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/linear.cc.o.d"
  "/root/repo/src/model/mlp.cc" "src/model/CMakeFiles/ucp_model.dir/mlp.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/mlp.cc.o.d"
  "/root/repo/src/model/nn_ops.cc" "src/model/CMakeFiles/ucp_model.dir/nn_ops.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/nn_ops.cc.o.d"
  "/root/repo/src/model/param.cc" "src/model/CMakeFiles/ucp_model.dir/param.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/param.cc.o.d"
  "/root/repo/src/model/stage_model.cc" "src/model/CMakeFiles/ucp_model.dir/stage_model.cc.o" "gcc" "src/model/CMakeFiles/ucp_model.dir/stage_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/ucp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/ucp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ucp_parallel_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ucp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
