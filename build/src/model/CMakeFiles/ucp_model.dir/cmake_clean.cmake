file(REMOVE_RECURSE
  "CMakeFiles/ucp_model.dir/attention.cc.o"
  "CMakeFiles/ucp_model.dir/attention.cc.o.d"
  "CMakeFiles/ucp_model.dir/block.cc.o"
  "CMakeFiles/ucp_model.dir/block.cc.o.d"
  "CMakeFiles/ucp_model.dir/config.cc.o"
  "CMakeFiles/ucp_model.dir/config.cc.o.d"
  "CMakeFiles/ucp_model.dir/inventory.cc.o"
  "CMakeFiles/ucp_model.dir/inventory.cc.o.d"
  "CMakeFiles/ucp_model.dir/linear.cc.o"
  "CMakeFiles/ucp_model.dir/linear.cc.o.d"
  "CMakeFiles/ucp_model.dir/mlp.cc.o"
  "CMakeFiles/ucp_model.dir/mlp.cc.o.d"
  "CMakeFiles/ucp_model.dir/nn_ops.cc.o"
  "CMakeFiles/ucp_model.dir/nn_ops.cc.o.d"
  "CMakeFiles/ucp_model.dir/param.cc.o"
  "CMakeFiles/ucp_model.dir/param.cc.o.d"
  "CMakeFiles/ucp_model.dir/stage_model.cc.o"
  "CMakeFiles/ucp_model.dir/stage_model.cc.o.d"
  "libucp_model.a"
  "libucp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
