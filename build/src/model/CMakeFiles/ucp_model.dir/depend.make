# Empty dependencies file for ucp_model.
# This may be replaced when dependencies are built.
