file(REMOVE_RECURSE
  "CMakeFiles/ucp_ckpt.dir/checkpoint.cc.o"
  "CMakeFiles/ucp_ckpt.dir/checkpoint.cc.o.d"
  "CMakeFiles/ucp_ckpt.dir/foreign.cc.o"
  "CMakeFiles/ucp_ckpt.dir/foreign.cc.o.d"
  "libucp_ckpt.a"
  "libucp_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
