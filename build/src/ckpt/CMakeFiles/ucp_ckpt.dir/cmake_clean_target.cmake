file(REMOVE_RECURSE
  "libucp_ckpt.a"
)
