
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/checkpoint.cc" "src/ckpt/CMakeFiles/ucp_ckpt.dir/checkpoint.cc.o" "gcc" "src/ckpt/CMakeFiles/ucp_ckpt.dir/checkpoint.cc.o.d"
  "/root/repo/src/ckpt/foreign.cc" "src/ckpt/CMakeFiles/ucp_ckpt.dir/foreign.cc.o" "gcc" "src/ckpt/CMakeFiles/ucp_ckpt.dir/foreign.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/ucp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ucp_zero.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ucp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/ucp_parallel_types.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/ucp_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/ucp_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ucp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ucp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ucp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
