# Empty compiler generated dependencies file for ucp_ckpt.
# This may be replaced when dependencies are built.
