file(REMOVE_RECURSE
  "libucp_data.a"
)
