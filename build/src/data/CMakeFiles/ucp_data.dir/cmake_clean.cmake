file(REMOVE_RECURSE
  "CMakeFiles/ucp_data.dir/dataset.cc.o"
  "CMakeFiles/ucp_data.dir/dataset.cc.o.d"
  "libucp_data.a"
  "libucp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
