# Empty dependencies file for ucp_data.
# This may be replaced when dependencies are built.
