# Empty dependencies file for ucp_runtime.
# This may be replaced when dependencies are built.
