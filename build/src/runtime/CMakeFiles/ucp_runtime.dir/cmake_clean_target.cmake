file(REMOVE_RECURSE
  "libucp_runtime.a"
)
