file(REMOVE_RECURSE
  "CMakeFiles/ucp_runtime.dir/trainer.cc.o"
  "CMakeFiles/ucp_runtime.dir/trainer.cc.o.d"
  "libucp_runtime.a"
  "libucp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
