file(REMOVE_RECURSE
  "CMakeFiles/ucp_parallel_types.dir/partition_spec.cc.o"
  "CMakeFiles/ucp_parallel_types.dir/partition_spec.cc.o.d"
  "CMakeFiles/ucp_parallel_types.dir/topology.cc.o"
  "CMakeFiles/ucp_parallel_types.dir/topology.cc.o.d"
  "libucp_parallel_types.a"
  "libucp_parallel_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_parallel_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
