file(REMOVE_RECURSE
  "libucp_parallel_types.a"
)
