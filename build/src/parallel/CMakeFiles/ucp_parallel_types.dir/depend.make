# Empty dependencies file for ucp_parallel_types.
# This may be replaced when dependencies are built.
