file(REMOVE_RECURSE
  "CMakeFiles/ucp_zero.dir/zero.cc.o"
  "CMakeFiles/ucp_zero.dir/zero.cc.o.d"
  "libucp_zero.a"
  "libucp_zero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_zero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
