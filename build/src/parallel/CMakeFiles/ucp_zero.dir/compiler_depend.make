# Empty compiler generated dependencies file for ucp_zero.
# This may be replaced when dependencies are built.
