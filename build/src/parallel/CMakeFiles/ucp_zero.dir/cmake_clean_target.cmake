file(REMOVE_RECURSE
  "libucp_zero.a"
)
