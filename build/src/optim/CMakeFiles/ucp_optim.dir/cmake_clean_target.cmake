file(REMOVE_RECURSE
  "libucp_optim.a"
)
