# Empty compiler generated dependencies file for ucp_optim.
# This may be replaced when dependencies are built.
