file(REMOVE_RECURSE
  "CMakeFiles/ucp_optim.dir/adam.cc.o"
  "CMakeFiles/ucp_optim.dir/adam.cc.o.d"
  "libucp_optim.a"
  "libucp_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
