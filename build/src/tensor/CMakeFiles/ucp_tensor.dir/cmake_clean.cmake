file(REMOVE_RECURSE
  "CMakeFiles/ucp_tensor.dir/bf16.cc.o"
  "CMakeFiles/ucp_tensor.dir/bf16.cc.o.d"
  "CMakeFiles/ucp_tensor.dir/matmul.cc.o"
  "CMakeFiles/ucp_tensor.dir/matmul.cc.o.d"
  "CMakeFiles/ucp_tensor.dir/tensor.cc.o"
  "CMakeFiles/ucp_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/ucp_tensor.dir/tensor_file.cc.o"
  "CMakeFiles/ucp_tensor.dir/tensor_file.cc.o.d"
  "libucp_tensor.a"
  "libucp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
