# Empty dependencies file for ucp_tensor.
# This may be replaced when dependencies are built.
