file(REMOVE_RECURSE
  "libucp_tensor.a"
)
