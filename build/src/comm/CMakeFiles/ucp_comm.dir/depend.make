# Empty dependencies file for ucp_comm.
# This may be replaced when dependencies are built.
