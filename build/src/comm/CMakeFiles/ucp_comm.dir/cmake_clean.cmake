file(REMOVE_RECURSE
  "CMakeFiles/ucp_comm.dir/comm.cc.o"
  "CMakeFiles/ucp_comm.dir/comm.cc.o.d"
  "libucp_comm.a"
  "libucp_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
