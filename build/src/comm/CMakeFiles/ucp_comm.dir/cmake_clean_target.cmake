file(REMOVE_RECURSE
  "libucp_comm.a"
)
