file(REMOVE_RECURSE
  "CMakeFiles/ucp_core.dir/atom.cc.o"
  "CMakeFiles/ucp_core.dir/atom.cc.o.d"
  "CMakeFiles/ucp_core.dir/converter.cc.o"
  "CMakeFiles/ucp_core.dir/converter.cc.o.d"
  "CMakeFiles/ucp_core.dir/elastic.cc.o"
  "CMakeFiles/ucp_core.dir/elastic.cc.o.d"
  "CMakeFiles/ucp_core.dir/loader.cc.o"
  "CMakeFiles/ucp_core.dir/loader.cc.o.d"
  "CMakeFiles/ucp_core.dir/ops.cc.o"
  "CMakeFiles/ucp_core.dir/ops.cc.o.d"
  "CMakeFiles/ucp_core.dir/patterns.cc.o"
  "CMakeFiles/ucp_core.dir/patterns.cc.o.d"
  "CMakeFiles/ucp_core.dir/validate.cc.o"
  "CMakeFiles/ucp_core.dir/validate.cc.o.d"
  "libucp_core.a"
  "libucp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
