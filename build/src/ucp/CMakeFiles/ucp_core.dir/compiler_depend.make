# Empty compiler generated dependencies file for ucp_core.
# This may be replaced when dependencies are built.
