file(REMOVE_RECURSE
  "libucp_core.a"
)
