# Empty dependencies file for cross_framework.
# This may be replaced when dependencies are built.
