file(REMOVE_RECURSE
  "CMakeFiles/cross_framework.dir/cross_framework.cpp.o"
  "CMakeFiles/cross_framework.dir/cross_framework.cpp.o.d"
  "cross_framework"
  "cross_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
