file(REMOVE_RECURSE
  "CMakeFiles/moe_gqa_reshard.dir/moe_gqa_reshard.cpp.o"
  "CMakeFiles/moe_gqa_reshard.dir/moe_gqa_reshard.cpp.o.d"
  "moe_gqa_reshard"
  "moe_gqa_reshard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_gqa_reshard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
