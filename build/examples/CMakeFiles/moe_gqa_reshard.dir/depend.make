# Empty dependencies file for moe_gqa_reshard.
# This may be replaced when dependencies are built.
