# Empty dependencies file for elastic_failover.
# This may be replaced when dependencies are built.
