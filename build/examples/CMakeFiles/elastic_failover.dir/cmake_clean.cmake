file(REMOVE_RECURSE
  "CMakeFiles/elastic_failover.dir/elastic_failover.cpp.o"
  "CMakeFiles/elastic_failover.dir/elastic_failover.cpp.o.d"
  "elastic_failover"
  "elastic_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
