// Gradient correctness of every nn primitive via central finite differences.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "src/model/nn_ops.h"

namespace ucp {
namespace {

// Central-difference gradient of scalar(fn) wrt x, compared elementwise against analytic.
// scalar_fn must be a pure function of its input.
void CheckGradient(const Tensor& x, const std::function<double(const Tensor&)>& scalar_fn,
                   const Tensor& analytic_grad, float eps = 1e-3f, float tol = 2e-2f) {
  ASSERT_EQ(x.numel(), analytic_grad.numel());
  for (int64_t i = 0; i < x.numel(); ++i) {
    Tensor plus = x.Clone();
    plus.at(i) += eps;
    Tensor minus = x.Clone();
    minus.at(i) -= eps;
    double numeric = (scalar_fn(plus) - scalar_fn(minus)) / (2.0 * eps);
    double analytic = analytic_grad.at(i);
    double scale = std::max({1.0, std::fabs(numeric), std::fabs(analytic)});
    EXPECT_NEAR(numeric, analytic, tol * scale) << "element " << i;
  }
}

Tensor RandomInput(Shape shape, uint64_t stream, float stddev = 1.0f) {
  CounterRng rng(2024, stream);
  return Tensor::Gaussian(std::move(shape), rng, 0, stddev);
}

// Weighted-sum loss: L = sum(w * y) with fixed random w, making dL/dy = w.
struct WeightedLoss {
  Tensor w;
  explicit WeightedLoss(const Shape& shape) : w(RandomInput(shape, 999)) {}
  double Of(const Tensor& y) const {
    double sum = 0.0;
    for (int64_t i = 0; i < y.numel(); ++i) {
      sum += static_cast<double>(w.at(i)) * y.at(i);
    }
    return sum;
  }
};

TEST(NnOpsGradTest, Gelu) {
  Tensor x = RandomInput({3, 5}, 1);
  WeightedLoss loss(x.shape());
  Tensor analytic = GeluBackward(x, loss.w);
  CheckGradient(x, [&](const Tensor& xin) { return loss.Of(Gelu(xin)); }, analytic);
}

TEST(NnOpsGradTest, Silu) {
  Tensor x = RandomInput({4, 3}, 2);
  WeightedLoss loss(x.shape());
  Tensor analytic = SiluBackward(x, loss.w);
  CheckGradient(x, [&](const Tensor& xin) { return loss.Of(Silu(xin)); }, analytic);
}

TEST(NnOpsGradTest, LayerNormInput) {
  Tensor x = RandomInput({3, 8}, 3);
  Tensor gamma = RandomInput({8}, 4, 0.5f);
  gamma.AddScaled_(Tensor::Full({8}, 1.0f), 1.0f);  // keep gamma away from zero
  Tensor beta = RandomInput({8}, 5, 0.1f);
  WeightedLoss loss(x.shape());

  LayerNormCache cache;
  LayerNormForward(x, gamma, &beta, cache);
  Tensor dgamma = Tensor::Zeros({8});
  Tensor dbeta = Tensor::Zeros({8});
  Tensor dx = LayerNormBackward(loss.w, gamma, cache, dgamma, &dbeta);

  CheckGradient(x, [&](const Tensor& xin) {
    LayerNormCache c;
    return loss.Of(LayerNormForward(xin, gamma, &beta, c));
  }, dx);
  CheckGradient(gamma, [&](const Tensor& g) {
    LayerNormCache c;
    return loss.Of(LayerNormForward(x, g, &beta, c));
  }, dgamma);
  CheckGradient(beta, [&](const Tensor& b) {
    LayerNormCache c;
    return loss.Of(LayerNormForward(x, gamma, &b, c));
  }, dbeta);
}

TEST(NnOpsGradTest, LayerNormWithoutBias) {
  Tensor x = RandomInput({2, 6}, 6);
  Tensor gamma = Tensor::Full({6}, 1.2f);
  WeightedLoss loss(x.shape());
  LayerNormCache cache;
  LayerNormForward(x, gamma, nullptr, cache);
  Tensor dgamma = Tensor::Zeros({6});
  Tensor dx = LayerNormBackward(loss.w, gamma, cache, dgamma, nullptr);
  CheckGradient(x, [&](const Tensor& xin) {
    LayerNormCache c;
    return loss.Of(LayerNormForward(xin, gamma, nullptr, c));
  }, dx);
}

TEST(NnOpsGradTest, RmsNorm) {
  Tensor x = RandomInput({3, 8}, 7);
  Tensor gamma = RandomInput({8}, 8, 0.3f);
  gamma.AddScaled_(Tensor::Full({8}, 1.0f), 1.0f);
  WeightedLoss loss(x.shape());

  RmsNormCache cache;
  RmsNormForward(x, gamma, cache);
  Tensor dgamma = Tensor::Zeros({8});
  Tensor dx = RmsNormBackward(loss.w, gamma, cache, dgamma);

  CheckGradient(x, [&](const Tensor& xin) {
    RmsNormCache c;
    return loss.Of(RmsNormForward(xin, gamma, c));
  }, dx);
  CheckGradient(gamma, [&](const Tensor& g) {
    RmsNormCache c;
    return loss.Of(RmsNormForward(x, g, c));
  }, dgamma);
}

TEST(NnOpsTest, SoftmaxRowsSumToOne) {
  Tensor x = RandomInput({5, 7}, 9, 3.0f);
  SoftmaxRows_(x);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 7; ++c) {
      EXPECT_GE(x.at(r * 7 + c), 0.0f);
      sum += x.at(r * 7 + c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(NnOpsTest, SoftmaxStableForLargeLogits) {
  Tensor x = Tensor::FromVector({1, 3}, {1000.0f, 1001.0f, 999.0f});
  SoftmaxRows_(x);
  EXPECT_FALSE(std::isnan(x.at(0)));
  EXPECT_GT(x.at(1), x.at(0));
  EXPECT_GT(x.at(0), x.at(2));
}

TEST(NnOpsGradTest, SoftmaxBackward) {
  Tensor z = RandomInput({2, 5}, 10);
  WeightedLoss loss({2, 5});
  Tensor probs = z.Clone();
  SoftmaxRows_(probs);
  Tensor dz = SoftmaxRowsBackward(probs, loss.w);
  CheckGradient(z, [&](const Tensor& zin) {
    Tensor p = zin.Clone();
    SoftmaxRows_(p);
    return loss.Of(p);
  }, dz);
}

TEST(NnOpsTest, CrossEntropyMatchesManual) {
  Tensor logits = Tensor::FromVector({1, 3}, {0.0f, 0.0f, 0.0f});
  Tensor labels = Tensor::FromVector({1}, {1.0f});
  Tensor dlogits = Tensor::Zeros({1, 3});
  double loss = CrossEntropySum(logits, labels, dlogits);
  EXPECT_NEAR(loss, std::log(3.0), 1e-6);
  EXPECT_NEAR(dlogits.at(0), 1.0 / 3.0, 1e-6);
  EXPECT_NEAR(dlogits.at(1), 1.0 / 3.0 - 1.0, 1e-6);
}

TEST(NnOpsGradTest, CrossEntropy) {
  Tensor logits = RandomInput({4, 6}, 11, 2.0f);
  Tensor labels = Tensor::FromVector({4}, {0.0f, 3.0f, 5.0f, 2.0f});
  Tensor dlogits = Tensor::Zeros({4, 6});
  CrossEntropySum(logits, labels, dlogits);
  CheckGradient(logits, [&](const Tensor& lin) {
    Tensor d = Tensor::Zeros({4, 6});
    return CrossEntropySum(lin, labels, d);
  }, dlogits);
}

TEST(NnOpsTest, CrossEntropyPerfectPredictionNearZeroLoss) {
  Tensor logits = Tensor::FromVector({1, 3}, {-30.0f, 30.0f, -30.0f});
  Tensor labels = Tensor::FromVector({1}, {1.0f});
  Tensor dlogits = Tensor::Zeros({1, 3});
  EXPECT_NEAR(CrossEntropySum(logits, labels, dlogits), 0.0, 1e-6);
}

}  // namespace
}  // namespace ucp
