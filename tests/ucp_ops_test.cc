// Unit tests for the UCP operations: StripPadding, Extract, UnionParam per pattern, atom
// storage, and GenUcpMetadata's agreement with the live optimizer layout.

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/common/rng.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"
#include "src/ucp/ops.h"

namespace ucp {
namespace {

ParamState MakeState(const std::string& name, const Tensor& base) {
  ParamState state;
  state.name = name;
  state.fp32 = base.Clone();
  state.exp_avg = base.Clone();
  state.exp_avg.Scale_(0.5f);
  state.exp_avg_sq = base.Clone();
  state.exp_avg_sq.Scale_(0.25f);
  return state;
}

// ---------------- StripPadding ----------------

TEST(StripPaddingTest, RemovesTailPadding) {
  Tensor flat = Tensor::Full({10}, 1.0f);
  Result<Tensor> stripped = StripPadding(flat, 7);
  ASSERT_TRUE(stripped.ok());
  EXPECT_EQ(stripped->numel(), 7);
}

TEST(StripPaddingTest, Idempotent) {
  Tensor flat = Tensor::Full({10}, 1.0f);
  Tensor once = *StripPadding(flat, 7);
  Tensor twice = *StripPadding(once, 7);
  EXPECT_TRUE(Tensor::BitEqual(once, twice));
}

TEST(StripPaddingTest, RejectsUndersizedBuffer) {
  Tensor flat = Tensor::Full({5}, 1.0f);
  EXPECT_EQ(StripPadding(flat, 7).status().code(), StatusCode::kInvalidArgument);
}

TEST(StripPaddingTest, RejectsNonFlat) {
  Tensor t = Tensor::Zeros({2, 2});
  EXPECT_EQ(StripPadding(t, 2).status().code(), StatusCode::kInvalidArgument);
}

// ---------------- UnionParam ----------------

TEST(UnionTest, UniqueSingleContribution) {
  PatternRule rule{ParamPattern::kUniqueParams, "*", 0, {}};
  Tensor base = Tensor::Full({2, 2}, 3.0f);
  std::vector<ShardContribution> contributions;
  contributions.push_back({{0, 0, 1, 0}, MakeState("p", base)});
  Result<ParamState> merged = UnionParam(rule, {2, 2}, std::move(contributions), 1);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(Tensor::BitEqual(merged->fp32, base));
}

TEST(UnionTest, UniqueRejectsMultiple) {
  PatternRule rule{ParamPattern::kUniqueParams, "*", 0, {}};
  Tensor base = Tensor::Full({2}, 1.0f);
  std::vector<ShardContribution> contributions;
  contributions.push_back({{0, 0, 0, 0}, MakeState("p", base)});
  contributions.push_back({{0, 0, 1, 0}, MakeState("p", base)});
  EXPECT_EQ(UnionParam(rule, {2}, std::move(contributions), 1).status().code(),
            StatusCode::kDataLoss);
}

TEST(UnionTest, ReplicatedPicksOneAndVerifies) {
  PatternRule rule{ParamPattern::kReplicatedParams, "*", 0, {}};
  Tensor base = Tensor::Full({3}, 2.0f);
  std::vector<ShardContribution> contributions;
  contributions.push_back({{1, 0, 0, 0}, MakeState("p", base)});
  contributions.push_back({{0, 0, 0, 0}, MakeState("p", base)});
  Result<ParamState> merged = UnionParam(rule, {3}, std::move(contributions), 2);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(Tensor::BitEqual(merged->fp32, base));
}

TEST(UnionTest, ReplicatedDivergenceIsDataLoss) {
  PatternRule rule{ParamPattern::kReplicatedParams, "*", 0, {}};
  std::vector<ShardContribution> contributions;
  contributions.push_back({{0, 0, 0, 0}, MakeState("p", Tensor::Full({3}, 2.0f))});
  contributions.push_back({{1, 0, 0, 0}, MakeState("p", Tensor::Full({3}, 2.5f))});
  EXPECT_EQ(UnionParam(rule, {3}, std::move(contributions), 2).status().code(),
            StatusCode::kDataLoss);
}

TEST(UnionTest, ToAverageAveragesAcrossSp) {
  PatternRule rule{ParamPattern::kParamsToAverage, "*", 0, {}};
  std::vector<ShardContribution> contributions;
  // Two SP ranks, each with a TP replica pair (identical within the SP rank).
  for (int sp = 0; sp < 2; ++sp) {
    for (int tp = 0; tp < 2; ++tp) {
      RankCoord c{tp, sp, 0, 0};
      contributions.push_back({c, MakeState("p", Tensor::Full({4}, sp == 0 ? 1.0f : 3.0f))});
    }
  }
  Result<ParamState> merged = UnionParam(rule, {4}, std::move(contributions), 2);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(Tensor::BitEqual(merged->fp32, Tensor::Full({4}, 2.0f)));
  EXPECT_TRUE(Tensor::BitEqual(merged->exp_avg, Tensor::Full({4}, 1.0f)));
}

TEST(UnionTest, FragmentReassemblesInTpOrder) {
  PatternRule rule{ParamPattern::kFragmentParams, "*", 0, {}};
  Tensor full = Tensor::Zeros({4, 2});
  for (int64_t i = 0; i < 8; ++i) {
    full.at(i) = static_cast<float>(i);
  }
  PartitionSpec spec = rule.ToPartitionSpec();
  std::vector<ShardContribution> contributions;
  // Deliver shards out of order; union must sort by tp.
  for (int tp : {1, 0}) {
    contributions.push_back({{tp, 0, 0, 0}, MakeState("p", ShardOf(spec, full, 2, tp))});
  }
  Result<ParamState> merged = UnionParam(rule, {4, 2}, std::move(contributions), 2);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(Tensor::BitEqual(merged->fp32, full));
}

TEST(UnionTest, FragmentWithSectionsAndSpReplicas) {
  // GQA sections plus SP=2 replication of each TP shard: union keeps one replica per TP.
  PatternRule rule{ParamPattern::kFragmentParams, "*", 0, {4, 2, 2}};
  Tensor full = Tensor::Zeros({8, 2});
  for (int64_t i = 0; i < 16; ++i) {
    full.at(i) = static_cast<float>(i);
  }
  PartitionSpec spec = rule.ToPartitionSpec();
  std::vector<ShardContribution> contributions;
  for (int sp = 0; sp < 2; ++sp) {
    for (int tp = 0; tp < 2; ++tp) {
      contributions.push_back(
          {{tp, sp, 0, 0}, MakeState("p", ShardOf(spec, full, 2, tp))});
    }
  }
  Result<ParamState> merged = UnionParam(rule, {8, 2}, std::move(contributions), 2);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(Tensor::BitEqual(merged->fp32, full));
}

TEST(UnionTest, FragmentMissingShardIsDataLoss) {
  PatternRule rule{ParamPattern::kFragmentParams, "*", 0, {}};
  Tensor full = Tensor::Full({4, 2}, 1.0f);
  std::vector<ShardContribution> contributions;
  contributions.push_back(
      {{0, 0, 0, 0}, MakeState("p", ShardOf(rule.ToPartitionSpec(), full, 2, 0))});
  EXPECT_EQ(UnionParam(rule, {4, 2}, std::move(contributions), 2).status().code(),
            StatusCode::kDataLoss);
}

TEST(UnionTest, EmptyContributionsRejected) {
  PatternRule rule{ParamPattern::kUniqueParams, "*", 0, {}};
  EXPECT_EQ(UnionParam(rule, {2}, {}, 1).status().code(), StatusCode::kInvalidArgument);
}

// ---------------- Atom storage ----------------

class AtomTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_atom_test"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }
  std::string dir_;
};

TEST_F(AtomTest, WriteReadRoundTrip) {
  CounterRng rng(1, 1);
  ParamState state = MakeState("language_model.embedding.word_embeddings.weight",
                               Tensor::Gaussian({8, 4}, rng, 0, 1.0f));
  PatternRule rule{ParamPattern::kFragmentParams, "*", 0, {}};
  ASSERT_TRUE(WriteAtom(dir_, state, rule).ok());
  Result<ParamState> back = ReadAtom(dir_, state.name);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(Tensor::BitEqual(back->fp32, state.fp32));
  EXPECT_TRUE(Tensor::BitEqual(back->exp_avg, state.exp_avg));
  EXPECT_TRUE(Tensor::BitEqual(back->exp_avg_sq, state.exp_avg_sq));
  EXPECT_EQ(*ReadAtomShape(dir_, state.name), (Shape{8, 4}));
}

TEST_F(AtomTest, MissingAtomIsNotFound) {
  EXPECT_EQ(ReadAtom(dir_, "no.such.param").status().code(), StatusCode::kNotFound);
}

TEST_F(AtomTest, UcpMetaRoundTrip) {
  UcpMeta meta;
  meta.model = TinyMoe();
  meta.source_strategy = {2, 2, 2, 1, 1, 2};
  meta.iteration = 100;
  meta.global_batch = 32;
  meta.data_seed = 4;
  meta.atom_names = {"a.weight", "b.bias"};
  ASSERT_TRUE(WriteUcpMeta(dir_, meta).ok());
  Result<UcpMeta> back = ReadUcpMeta(dir_);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->model == meta.model);
  EXPECT_TRUE(back->source_strategy == meta.source_strategy);
  EXPECT_EQ(back->iteration, 100);
  EXPECT_EQ(back->atom_names, meta.atom_names);
}

// ---------------- Extract & GenUcpMetadata against live runs ----------------

class ExtractTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_extract_test"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }
  std::string dir_;
};

TEST_F(ExtractTest, ReassemblesParamsFromZeroPartitions) {
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = {1, 1, 2, 1, 2, 1};
  cfg.global_batch = 4;
  TrainingRun run(cfg);
  run.Train(1, 2);
  run.Run([&](RankTrainer& t) {
    UCP_CHECK(SaveDistributedCheckpoint(dir_, t, 2).ok());
  });

  Result<ExtractedRank> extracted =
      Extract(PathJoin(dir_, "global_step2"), cfg.strategy, 0, 0, 0);
  ASSERT_TRUE(extracted.ok()) << extracted.status();
  EXPECT_EQ(extracted->steps_taken, 2);
  EXPECT_EQ(extracted->zero_stage, 2);

  // Every extracted fp32 state must equal the live parameter value (fp32 mode: published
  // values == masters).
  const ParamStore& store = run.trainer(0).model().store();
  ASSERT_EQ(extracted->params.size(), store.params().size());
  for (const ParamState& state : extracted->params) {
    ParamPtr live = store.FindOrNull(state.name);
    ASSERT_NE(live, nullptr) << state.name;
    EXPECT_TRUE(Tensor::BitEqual(state.fp32, live->value)) << state.name;
    EXPECT_EQ(state.fp32.shape(), live->value.shape());
  }
}

TEST_F(ExtractTest, MissingFileIsNotFound) {
  EXPECT_EQ(Extract(dir_, ParallelConfig{}, 0, 0, 0).status().code(), StatusCode::kNotFound);
}

TEST(GenUcpMetadataTest, PlanMatchesLiveOptimizerLayout) {
  for (ParallelConfig target : {ParallelConfig{2, 2, 2, 1, 1, 1},
                                ParallelConfig{1, 1, 4, 1, 3, 1},
                                ParallelConfig{2, 1, 1, 2, 2, 1},
                                ParallelConfig{1, 2, 2, 1, 0, 1}}) {
    TrainerConfig cfg;
    cfg.model = TinyGpt();
    cfg.strategy = target;
    cfg.global_batch = 8;
    TrainingRun run(cfg);
    for (int rank = 0; rank < run.world_size(); ++rank) {
      RankTrainer& t = run.trainer(rank);
      RankLoadPlan plan = GenUcpMetadata(cfg.model, target, t.coord());
      const FlatLayout& live = t.optimizer().layout();
      ASSERT_EQ(plan.layout.segments.size(), live.segments.size()) << target.ToString();
      EXPECT_EQ(plan.layout.total, live.total);
      EXPECT_EQ(plan.layout.padded_total, live.padded_total);
      EXPECT_EQ(plan.layout.partition_size, live.partition_size);
      for (size_t i = 0; i < live.segments.size(); ++i) {
        EXPECT_EQ(plan.layout.segments[i].name, live.segments[i].name);
        EXPECT_EQ(plan.layout.segments[i].offset, live.segments[i].offset);
        EXPECT_EQ(plan.layout.segments[i].shape, live.segments[i].shape);
        EXPECT_EQ(plan.layout.segments[i].decay, live.segments[i].decay);
        EXPECT_EQ(plan.layout.segments[i].norm_counts, live.segments[i].norm_counts);
      }
      EXPECT_EQ(plan.partition_numel, t.optimizer().state_numel());
      EXPECT_EQ(plan.partition_offset, t.optimizer().owned_offset());
    }
  }
}

TEST(GenUcpMetadataTest, PlanJsonSerializes) {
  RankLoadPlan plan = GenUcpMetadata(TinyGpt(), {2, 1, 1, 1, 1, 1}, {0, 0, 0, 0});
  Json json = plan.ToJson();
  EXPECT_TRUE(json.Has("flat_layout"));
  EXPECT_TRUE(json.Has("assignments"));
  Result<Json> reparsed = Json::Parse(json.Dump(2));
  ASSERT_TRUE(reparsed.ok());
}

// ---------------- Randomized Extract -> Union -> Load round-trip ----------------

// Property test: for randomly sampled valid strategies, save -> ConvertToUcp ->
// LoadUcpCheckpoint into a fresh run of the same strategy restores every parameter and
// every optimizer partition bitwise. Same-strategy round-trips still push every atom
// through Extract and UnionParam (fragment reassembly, replica verification, SP averaging)
// while keeping the expected values trivially available: the source run itself. The RNG is
// seeded, so a failing strategy reproduces deterministically.
TEST(UcpRoundTripPropertyTest, SampledStrategiesRoundTripBitwise) {
  const std::string dir = *MakeTempDir("ucp_prop_test");
  Rng rng(0xC0FFEE);
  std::set<std::array<int, 6>> seen;
  std::vector<ParallelConfig> strategies;
  // Sample (tp, pp, dp, sp, zero_stage, micro_batches) from the lattice TinyGpt admits
  // (heads/hidden/ffn/vocab divisible by tp, seq by sp, layers >= pp, batch 8 by dp*micro)
  // with world_size capped at 8, deduplicated until 20 distinct strategies are collected.
  while (strategies.size() < 20) {
    const int tp = 1 << rng.NextBounded(2);
    const int pp = 1 << rng.NextBounded(2);
    const int dp = 1 << rng.NextBounded(3);
    const int sp = 1 << rng.NextBounded(2);
    const int zero = static_cast<int>(rng.NextBounded(4));
    const int micro = 1 << rng.NextBounded(2);
    if (tp * pp * dp * sp > 8) {
      continue;
    }
    if (!seen.insert({tp, pp, dp, sp, zero, micro}).second) {
      continue;
    }
    strategies.push_back({tp, pp, dp, sp, zero, micro});
  }

  // Asserts `got` carries bitwise-identical state to `want` on every rank.
  auto expect_bit_identical = [](TrainingRun& want, TrainingRun& got) {
    for (int rank = 0; rank < want.world_size(); ++rank) {
      const ZeroOptimizer& a = want.trainer(rank).optimizer();
      const ZeroOptimizer& b = got.trainer(rank).optimizer();
      EXPECT_EQ(b.steps_taken(), a.steps_taken()) << "rank " << rank;
      EXPECT_TRUE(Tensor::BitEqual(b.MasterState(), a.MasterState())) << "rank " << rank;
      EXPECT_TRUE(Tensor::BitEqual(b.ExpAvgState(), a.ExpAvgState())) << "rank " << rank;
      EXPECT_TRUE(Tensor::BitEqual(b.ExpAvgSqState(), a.ExpAvgSqState())) << "rank " << rank;
      const ParamStore& loaded = got.trainer(rank).model().store();
      for (const ParamPtr& p : want.trainer(rank).model().store().params()) {
        ParamPtr q = loaded.FindOrNull(p->info.name);
        ASSERT_NE(q, nullptr) << p->info.name;
        EXPECT_TRUE(Tensor::BitEqual(q->value, p->value)) << "rank " << rank << " "
                                                          << p->info.name;
      }
    }
  };

  for (size_t i = 0; i < strategies.size(); ++i) {
    SCOPED_TRACE(strategies[i].ToString());
    TrainerConfig cfg;
    cfg.model = TinyGpt();
    cfg.strategy = strategies[i];
    cfg.global_batch = 8;
    const int64_t steps = 1 + static_cast<int64_t>(rng.NextBounded(2));
    const std::string tag = TagForIteration(steps);

    TrainingRun source(cfg);
    source.Train(1, steps);
    const std::string ckpt = PathJoin(dir, "ckpt" + std::to_string(i));
    source.Run([&](RankTrainer& t) {
      UCP_CHECK(SaveDistributedCheckpoint(ckpt, t, steps).ok());
    });
    const std::string ucp = PathJoin(ckpt, tag + ".ucp");
    Result<ConvertStats> stats = ConvertToUcp(ckpt, tag, ucp);
    ASSERT_TRUE(stats.ok()) << stats.status();

    TrainingRun target(cfg);
    target.Run([&](RankTrainer& t) { UCP_CHECK(LoadUcpCheckpoint(ucp, t).ok()); });
    if (strategies[i].sp == 1) {
      expect_bit_identical(source, target);
    } else {
      // SP-independent params (layernorms) drift across the SP group and the union stores
      // their average, so the loaded run holds the canonical averaged replicas rather than
      // the source's drifted ones. The bitwise property for SP > 1 is that the canonical
      // form is a fixed point: a second save -> convert -> load must reproduce `target`
      // exactly (averaging identical replicas is exact in IEEE arithmetic).
      const std::string ckpt2 = PathJoin(dir, "ckpt" + std::to_string(i) + "b");
      target.Run([&](RankTrainer& t) {
        UCP_CHECK(SaveDistributedCheckpoint(ckpt2, t, steps).ok());
      });
      const std::string ucp2 = PathJoin(ckpt2, tag + ".ucp");
      Result<ConvertStats> stats2 = ConvertToUcp(ckpt2, tag, ucp2);
      ASSERT_TRUE(stats2.ok()) << stats2.status();
      TrainingRun second(cfg);
      second.Run([&](RankTrainer& t) { UCP_CHECK(LoadUcpCheckpoint(ucp2, t).ok()); });
      expect_bit_identical(target, second);
      ASSERT_TRUE(RemoveAll(ckpt2).ok());
    }
    ASSERT_TRUE(RemoveAll(ckpt).ok());
  }
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace ucp
