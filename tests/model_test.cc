// Model-level tests: inventory structure, deterministic materialization, pipeline stage
// placement, and an end-to-end finite-difference gradient check of the full single-rank
// model (embedding -> blocks -> head -> cross-entropy) for each architecture.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/data/dataset.h"
#include "src/model/inventory.h"
#include "src/model/stage_model.h"

namespace ucp {
namespace {

std::map<std::string, InventoryEntry> ByName(const std::vector<InventoryEntry>& inventory) {
  std::map<std::string, InventoryEntry> out;
  for (const InventoryEntry& e : inventory) {
    out[e.param.name] = e;
  }
  return out;
}

TEST(InventoryTest, GptHasExpectedStructure) {
  ModelConfig config = TinyGpt();
  auto inventory = BuildInventory(config);
  auto by_name = ByName(inventory);
  EXPECT_EQ(by_name.size(), inventory.size()) << "duplicate names";

  // Embedding: vocab-parallel fragment on dim 0.
  const auto& emb = by_name.at("language_model.embedding.word_embeddings.weight");
  EXPECT_EQ(emb.param.full_shape, (Shape{64, 32}));
  EXPECT_EQ(emb.param.tp_spec.kind, PartitionKind::kFragment);
  EXPECT_EQ(emb.param.tp_spec.dim, 0);
  EXPECT_TRUE(emb.param.on_first_stage);
  EXPECT_FALSE(emb.param.on_last_stage);  // untied

  // Fused QKV with uniform heads: three equal sections.
  const auto& qkv =
      by_name.at("language_model.encoder.layers.0.self_attention.query_key_value.weight");
  EXPECT_EQ(qkv.param.full_shape, (Shape{96, 32}));
  EXPECT_EQ(qkv.param.tp_spec.sections, (std::vector<int64_t>{32, 32, 32}));

  // Row-parallel dense: fragment on dim 1; its bias replicated and no-decay.
  const auto& dense =
      by_name.at("language_model.encoder.layers.0.self_attention.dense.weight");
  EXPECT_EQ(dense.param.tp_spec.dim, 1);
  const auto& dense_b =
      by_name.at("language_model.encoder.layers.0.self_attention.dense.bias");
  EXPECT_EQ(dense_b.param.tp_spec.kind, PartitionKind::kReplicated);
  EXPECT_FALSE(dense_b.param.decay);

  // Norms flagged sp-independent.
  EXPECT_TRUE(by_name.at("language_model.encoder.layers.1.input_layernorm.weight")
                  .sp_independent);
  EXPECT_FALSE(qkv.sp_independent);

  // Untied model has a distinct output layer on the last stage.
  const auto& head = by_name.at("language_model.output_layer.weight");
  EXPECT_TRUE(head.param.on_last_stage);
}

TEST(InventoryTest, GqaSectionsUnequal) {
  ModelConfig config = TinyLlama();  // heads=4, kv_heads=2, hidden=32 -> head_dim=8, kv=16
  auto by_name = ByName(BuildInventory(config));
  const auto& qkv =
      by_name.at("language_model.encoder.layers.0.self_attention.query_key_value.weight");
  EXPECT_EQ(qkv.param.tp_spec.sections, (std::vector<int64_t>{32, 16, 16}));
  EXPECT_EQ(qkv.param.full_shape, (Shape{64, 32}));
  // LLaMA: no biases, no position embeddings.
  EXPECT_EQ(by_name.count("language_model.embedding.position_embeddings.weight"), 0u);
  EXPECT_EQ(
      by_name.count("language_model.encoder.layers.0.self_attention.query_key_value.bias"),
      0u);
  EXPECT_EQ(by_name.count("language_model.encoder.layers.0.mlp.gate_proj.weight"), 1u);
}

TEST(InventoryTest, MoeExpertTensors) {
  ModelConfig config = TinyMoe();  // E=2, ffn=32, hidden=32
  auto by_name = ByName(BuildInventory(config));
  const auto& w1 = by_name.at("language_model.encoder.layers.0.mlp.moe.experts.w1");
  EXPECT_EQ(w1.param.full_shape, (Shape{2, 32, 32}));
  EXPECT_EQ(w1.param.tp_spec.dim, 1);
  const auto& w2 = by_name.at("language_model.encoder.layers.0.mlp.moe.experts.w2");
  EXPECT_EQ(w2.param.tp_spec.dim, 2);
  const auto& gate = by_name.at("language_model.encoder.layers.0.mlp.moe.gate.weight");
  EXPECT_EQ(gate.param.tp_spec.kind, PartitionKind::kReplicated);
}

TEST(InventoryTest, TiedEmbeddingOnBothEdgeStages) {
  ModelConfig config = BloomScaled();
  auto by_name = ByName(BuildInventory(config));
  const auto& emb = by_name.at("language_model.embedding.word_embeddings.weight");
  EXPECT_TRUE(emb.param.on_first_stage);
  EXPECT_TRUE(emb.param.on_last_stage);
  EXPECT_EQ(by_name.count("language_model.output_layer.weight"), 0u);
}

TEST(InventoryTest, EffectiveSpecFlipsNormsUnderSp) {
  ModelConfig config = TinyGpt();
  auto by_name = ByName(BuildInventory(config));
  const auto& norm = by_name.at("language_model.encoder.layers.0.input_layernorm.weight");
  ParallelConfig no_sp{2, 1, 1, 1, 0, 1};
  EXPECT_EQ(EffectiveSpec(norm, no_sp).kind, PartitionKind::kReplicated);
  ParallelConfig with_sp{1, 1, 1, 2, 0, 1};
  EXPECT_EQ(EffectiveSpec(norm, with_sp).kind, PartitionKind::kToAverage);
}

TEST(InventoryTest, StageEntriesCoverEveryParamExactlyOnceExceptTied) {
  ModelConfig config = BloomScaled();
  auto inventory = BuildInventory(config);
  const int pp = 4;
  std::map<std::string, int> appearances;
  for (int stage = 0; stage < pp; ++stage) {
    for (const InventoryEntry& e : StageEntries(inventory, config, stage, pp)) {
      appearances[e.param.name]++;
    }
  }
  for (const InventoryEntry& e : inventory) {
    int expected =
        e.param.name == "language_model.embedding.word_embeddings.weight" ? 2 : 1;
    EXPECT_EQ(appearances[e.param.name], expected) << e.param.name;
  }
}

TEST(InventoryTest, InitStreamsUnique) {
  auto inventory = BuildInventory(MoeScaled());
  std::set<uint64_t> streams;
  for (const InventoryEntry& e : inventory) {
    EXPECT_TRUE(streams.insert(e.param.init_stream).second) << e.param.name;
  }
}

TEST(ParamTest, MaterializedShardMatchesShardOfFull) {
  ModelConfig config = TinyLlama();
  for (const InventoryEntry& entry : BuildInventory(config)) {
    Tensor full = InitFullValue(entry.param, config.init_seed);
    for (int tp_rank = 0; tp_rank < 2; ++tp_rank) {
      ParamPtr p = MaterializeParam(entry.param, config.init_seed, 2, tp_rank);
      Tensor expected = ShardOf(entry.param.tp_spec, full, 2, tp_rank);
      EXPECT_TRUE(Tensor::BitEqual(p->value, expected)) << entry.param.name;
    }
  }
}

TEST(ParamTest, NormInitsToOnesBiasToZeros) {
  ModelConfig config = TinyGpt();
  auto by_name = ByName(BuildInventory(config));
  Tensor norm = InitFullValue(
      by_name.at("language_model.encoder.layers.0.input_layernorm.weight").param,
      config.init_seed);
  EXPECT_TRUE(Tensor::BitEqual(norm, Tensor::Full({32}, 1.0f)));
  Tensor bias = InitFullValue(
      by_name.at("language_model.encoder.layers.0.input_layernorm.bias").param,
      config.init_seed);
  EXPECT_TRUE(Tensor::BitEqual(bias, Tensor::Zeros({32})));
}

TEST(ParamStoreTest, DuplicateRejectedLookupWorks) {
  ParamStore store;
  auto p = std::make_shared<Param>();
  p->info.name = "x";
  p->value = Tensor::Zeros({2});
  store.Add(p);
  EXPECT_EQ(store.Get("x"), p);
  EXPECT_EQ(store.FindOrNull("y"), nullptr);
  EXPECT_EQ(store.TotalNumel(), 2);
}

// ---- End-to-end gradient check of the single-rank model ----

class SingleRankHarness {
 public:
  explicit SingleRankHarness(const ModelConfig& config)
      : config_(config), world_(1), strategy_{1, 1, 1, 1, 0, 1} {
    topo_ = std::make_unique<Topology>(&world_, strategy_);
    model_ = std::make_unique<StageModel>(config, strategy_, topo_->CoordOf(0));
    auto groups = topo_->GroupsFor(0);
    ctx_.tp = groups.tp;
    ctx_.sp = groups.sp;
    ctx_.batch = 2;
    ctx_.seq_total = config.max_seq_len;
    ctx_.seq_local = config.max_seq_len;
    ctx_.seq_offset = 0;
  }

  // Mean loss over the batch; also populates grads when backward=true.
  double Loss(const Batch& batch, bool backward) {
    model_->store().ZeroGrads();
    Tensor x = model_->Embed(batch.tokens, ctx_);
    Tensor h = model_->ForwardBlocks(x, ctx_);
    double inv = 1.0 / static_cast<double>(batch.tokens.numel());
    double loss = model_->LossForward(h, batch.labels, ctx_, inv);
    if (backward) {
      Tensor dy = model_->LossBackward(ctx_);
      Tensor dx = model_->BackwardBlocks(dy, ctx_);
      model_->EmbedBackward(dx, ctx_);
    }
    return loss;
  }

  StageModel& model() { return *model_; }

 private:
  ModelConfig config_;
  World world_;
  ParallelConfig strategy_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<StageModel> model_;
  LayerContext ctx_;
};

void CheckModelGradients(const ModelConfig& config, int samples_per_param) {
  SingleRankHarness harness(config);
  SyntheticTextDataset data(config.vocab_size, config.max_seq_len, 3);
  Batch batch = MakeBatch(data, 0, 2, 0, 2);

  // Snapshot every parameter's analytic gradient before the finite-difference loop (each
  // Loss() call re-zeroes grads).
  harness.Loss(batch, /*backward=*/true);
  std::map<std::string, Tensor> analytic_grads;
  for (const ParamPtr& p : harness.model().store().params()) {
    analytic_grads[p->info.name] = p->grad.Clone();
  }

  // Spot-check a few coordinates of every parameter against central differences.
  const float eps = 1e-2f;
  for (const ParamPtr& p : harness.model().store().params()) {
    const Tensor& analytic = analytic_grads.at(p->info.name);
    CounterRng pick(99, p->info.init_stream);
    for (int s = 0; s < samples_per_param; ++s) {
      int64_t i = static_cast<int64_t>(
          pick.BoundedAt(static_cast<uint64_t>(s), static_cast<uint64_t>(p->value.numel())));
      float original = p->value.at(i);
      p->value.at(i) = original + eps;
      double plus = harness.Loss(batch, false);
      p->value.at(i) = original - eps;
      double minus = harness.Loss(batch, false);
      p->value.at(i) = original;
      double numeric = (plus - minus) / (2.0 * eps);
      double scale = std::max(
          {0.05, std::fabs(numeric), static_cast<double>(std::fabs(analytic.at(i)))});
      EXPECT_NEAR(numeric, analytic.at(i), 0.08 * scale)
          << p->info.name << " element " << i;
    }
  }
}

TEST(ModelGradTest, GptEndToEnd) { CheckModelGradients(TinyGpt(), 3); }

TEST(ModelGradTest, LlamaGqaEndToEnd) { CheckModelGradients(TinyLlama(), 3); }

TEST(ModelGradTest, MoeEndToEnd) { CheckModelGradients(TinyMoe(), 3); }

TEST(ModelGradTest, TiedBloomEndToEnd) {
  ModelConfig config = TinyGpt();
  config.arch = ArchKind::kBloom;
  config.tied_embeddings = true;
  CheckModelGradients(config, 3);
}

}  // namespace
}  // namespace ucp
