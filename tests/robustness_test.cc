// Failure injection: partial checkpoints, corrupted manifests, and error propagation
// through the parallel conversion pipeline. A checkpoint system earns its keep on the
// unhappy paths.

#include <gtest/gtest.h>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/ucp/converter.h"
#include "src/ucp/elastic.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/loader.h"

namespace ucp {
namespace {

TrainerConfig ConfigFor(const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  return cfg;
}

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_robustness"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::string Sub(const std::string& name) { return PathJoin(dir_, name); }

  // Trains briefly and checkpoints under Sub("ckpt").
  void MakeCheckpoint(const ParallelConfig& strategy, int64_t iteration = 2) {
    TrainingRun run(ConfigFor(strategy));
    run.Train(1, iteration);
    run.Run([&](RankTrainer& t) {
      UCP_CHECK(SaveDistributedCheckpoint(Sub("ckpt"), t, iteration).ok());
    });
  }

  std::string dir_;
};

TEST_F(RobustnessTest, ConvertFailsCleanlyOnMissingRankFile) {
  MakeCheckpoint({2, 1, 2, 1, 1, 1});
  // Simulate a rank that died mid-save: remove one optimizer shard.
  ASSERT_TRUE(
      RemoveAll(PathJoin(Sub("ckpt/global_step2"), OptimStatesFileName(1, 1, 0, 0))).ok());
  Result<ConvertStats> stats =
      ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp"), {.num_threads = 4});
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
}

TEST_F(RobustnessTest, ConvertDetectsCorruptOptimizerShard) {
  MakeCheckpoint({1, 1, 2, 1, 2, 1});
  std::string victim = PathJoin(Sub("ckpt/global_step2"), OptimStatesFileName(0, 0, 0, 0));
  std::string contents = *ReadFileToString(victim);
  contents[contents.size() - 20] ^= 0xFF;  // flip payload bits near the tail
  ASSERT_TRUE(WriteFileAtomic(victim, contents).ok());
  Result<ConvertStats> stats = ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp"));
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss);
}

TEST_F(RobustnessTest, ConvertRejectsTamperedMeta) {
  MakeCheckpoint({1, 1, 1, 1, 0, 1});
  std::string meta_path = PathJoin(Sub("ckpt/global_step2"), "checkpoint_meta.json");
  ASSERT_TRUE(WriteFileAtomic(meta_path, "{not json").ok());
  EXPECT_FALSE(ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp")).ok());
}

TEST_F(RobustnessTest, LoadUcpFailsOnMissingAtomTensor) {
  MakeCheckpoint({1, 1, 1, 1, 0, 1});
  ASSERT_TRUE(ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp")).ok());
  ASSERT_TRUE(RemoveAll(PathJoin(
                  AtomDir(Sub("ucp"), "language_model.output_layer.weight"), "exp_avg_sq"))
                  .ok());
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  Status s = LoadUcpCheckpoint(Sub("ucp"), run.trainer(0));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(RobustnessTest, LoadUcpFailsOnShapeTamperedAtom) {
  MakeCheckpoint({1, 1, 1, 1, 0, 1});
  ASSERT_TRUE(ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp")).ok());
  // Overwrite one atom with a wrong-shaped tensor (valid file, wrong contents).
  const char* name = "language_model.encoder.final_layernorm.weight";
  ASSERT_TRUE(
      SaveTensor(PathJoin(AtomDir(Sub("ucp"), name), "fp32"), Tensor::Zeros({7})).ok());
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  Status s = LoadUcpCheckpoint(Sub("ucp"), run.trainer(0));
  EXPECT_FALSE(s.ok());
}

TEST_F(RobustnessTest, ResumeElasticPropagatesCorruptionNotReshard) {
  // A corrupt checkpoint must not be misdiagnosed as a strategy change (which would
  // trigger a pointless conversion).
  MakeCheckpoint({1, 1, 2, 1, 1, 1});
  std::string victim = PathJoin(Sub("ckpt/global_step2"), OptimStatesFileName(0, 0, 0, 0));
  std::string contents = *ReadFileToString(victim);
  contents[contents.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(victim, contents).ok());

  TrainingRun run(ConfigFor({1, 1, 2, 1, 1, 1}));
  std::vector<Status> statuses(2);
  run.Run([&](RankTrainer& t) {
    Result<ResumeReport> report = ResumeElastic(Sub("ckpt"), t);
    statuses[static_cast<size_t>(t.rank())] =
        report.ok() ? OkStatus() : report.status();
  });
  // Rank 0 reads the corrupted shard; it must report data loss, not attempt conversion.
  EXPECT_EQ(statuses[0].code(), StatusCode::kDataLoss);
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step2.ucp")));
}

TEST_F(RobustnessTest, ResumeElasticWithoutLatestIsNotFound) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  ASSERT_TRUE(MakeDirs(Sub("empty")).ok());
  Result<ResumeReport> report = ResumeElastic(Sub("empty"), run.trainer(0));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST_F(RobustnessTest, UcpMetaTamperedVersionRejected) {
  MakeCheckpoint({1, 1, 1, 1, 0, 1});
  ASSERT_TRUE(ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp")).ok());
  Json meta = *Json::Parse(*ReadFileToString(PathJoin(Sub("ucp"), "ucp_meta.json")));
  meta["format_version"] = 999;
  ASSERT_TRUE(WriteFileAtomic(PathJoin(Sub("ucp"), "ucp_meta.json"), meta.Dump()).ok());
  EXPECT_EQ(ReadUcpMeta(Sub("ucp")).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RobustnessTest, SaveIsAtomicUnderRepeatedOverwrites) {
  // Saving the same tag repeatedly must never leave temp files or a mixed state.
  TrainingRun run(ConfigFor({1, 1, 2, 1, 1, 1}));
  run.Train(1, 1);
  for (int round = 0; round < 3; ++round) {
    run.Run([&](RankTrainer& t) {
      UCP_CHECK(SaveDistributedCheckpoint(Sub("ckpt"), t, 1).ok());
    });
  }
  auto files = *ListDir(Sub("ckpt/global_step1"));
  for (const std::string& file : files) {
    EXPECT_EQ(file.find(".tmp."), std::string::npos) << file;
  }
  TrainingRun fresh(ConfigFor({1, 1, 2, 1, 1, 1}));
  fresh.Run([&](RankTrainer& t) {
    UCP_CHECK(LoadDistributedCheckpoint(Sub("ckpt"), "global_step1", t).ok());
  });
}

}  // namespace
}  // namespace ucp
