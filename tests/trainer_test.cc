// Runtime equivalence properties: the global loss trajectory is independent of the
// parallelism strategy (to fp reduction-order tolerance), bit-deterministic for repeated
// identical runs, and learning actually happens. Parameterized over a strategy sweep.

#include <gtest/gtest.h>

#include "src/runtime/trainer.h"

namespace ucp {
namespace {

TrainerConfig ConfigFor(const ModelConfig& model, const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = model;
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  cfg.lr.warmup_iters = 2;
  cfg.lr.decay_iters = 30;
  return cfg;
}

TEST(TrainerTest, LossDecreasesOnMarkovData) {
  TrainerConfig cfg = ConfigFor(TinyGpt(), {1, 1, 1, 1, 0, 1});
  cfg.lr.max_lr = 3e-3f;  // tiny model: a larger LR shows learning within 60 iters
  cfg.lr.decay_iters = 60;
  TrainingRun run(cfg);
  auto losses = run.Train(1, 60);
  double early = (losses[0] + losses[1] + losses[2]) / 3;
  double late = (losses[57] + losses[58] + losses[59]) / 3;
  EXPECT_LT(late, early - 0.3) << "model failed to learn";
}

TEST(TrainerTest, RepeatedRunsBitIdentical) {
  auto run_once = [] {
    TrainingRun run(ConfigFor(TinyGpt(), {2, 1, 2, 1, 1, 2}));
    return run.Train(1, 6);
  };
  auto a = run_once();
  auto b = run_once();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "iter " << i;
  }
}

struct StrategyCase {
  ParallelConfig strategy;
  const char* label;
};

class StrategySweepTest : public ::testing::TestWithParam<StrategyCase> {};

// The core property behind the paper's Table 3: with identical data and init, every
// parallelism strategy computes the same optimization trajectory up to floating-point
// reduction order.
TEST_P(StrategySweepTest, LossMatchesSerialBaseline) {
  ModelConfig model = TinyGpt();
  TrainingRun baseline(ConfigFor(model, {1, 1, 1, 1, 0, 1}));
  auto expected = baseline.Train(1, 6);

  TrainingRun run(ConfigFor(model, GetParam().strategy));
  auto actual = run.Train(1, 6);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], 5e-3) << GetParam().label << " iter " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategySweepTest,
    ::testing::Values(
        StrategyCase{{2, 1, 1, 1, 0, 1}, "tp2"},
        StrategyCase{{1, 2, 1, 1, 0, 1}, "pp2"},
        StrategyCase{{1, 1, 2, 1, 0, 1}, "dp2"},
        StrategyCase{{1, 1, 2, 1, 1, 1}, "dp2_zero1"},
        StrategyCase{{1, 1, 2, 1, 2, 1}, "dp2_zero2"},
        StrategyCase{{1, 1, 2, 1, 3, 1}, "dp2_zero3"},
        StrategyCase{{1, 1, 1, 2, 0, 1}, "sp2"},
        StrategyCase{{2, 2, 1, 1, 0, 1}, "tp2_pp2"},
        StrategyCase{{2, 1, 2, 1, 1, 1}, "tp2_dp2_zero1"},
        StrategyCase{{1, 2, 2, 1, 1, 2}, "pp2_dp2_micro2"},
        StrategyCase{{2, 2, 2, 1, 1, 1}, "tp2_pp2_dp2"},
        StrategyCase{{1, 1, 4, 1, 2, 1}, "dp4_zero2"},
        StrategyCase{{1, 1, 2, 2, 1, 1}, "dp2_sp2_zero1"}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) { return info.param.label; });

TEST(TrainerTest, MicroBatchCountInvariance) {
  ModelConfig model = TinyGpt();
  TrainingRun run1(ConfigFor(model, {1, 1, 1, 1, 0, 1}));
  ParallelConfig micro4{1, 1, 1, 1, 0, 4};
  TrainingRun run4(ConfigFor(model, micro4));
  auto l1 = run1.Train(1, 5);
  auto l4 = run4.Train(1, 5);
  for (size_t i = 0; i < l1.size(); ++i) {
    EXPECT_NEAR(l1[i], l4[i], 2e-4) << "iter " << i;
  }
}

TEST(TrainerTest, EveryRankReportsSameLoss) {
  TrainerConfig cfg = ConfigFor(TinyGpt(), {2, 2, 2, 1, 1, 1});
  TrainingRun run(cfg);
  std::vector<double> losses(8, -1.0);
  run.Run([&](RankTrainer& t) {
    losses[static_cast<size_t>(t.rank())] = t.TrainIteration(1);
  });
  for (int r = 1; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(losses[static_cast<size_t>(r)], losses[0]) << "rank " << r;
  }
}

TEST(TrainerTest, GqaModelTrainsUnderTp) {
  ModelConfig model = TinyLlama();
  TrainingRun baseline(ConfigFor(model, {1, 1, 1, 1, 0, 1}));
  TrainingRun tp(ConfigFor(model, {2, 1, 1, 1, 0, 1}));
  auto lb = baseline.Train(1, 5);
  auto lt = tp.Train(1, 5);
  for (size_t i = 0; i < lb.size(); ++i) {
    EXPECT_NEAR(lt[i], lb[i], 5e-3) << "iter " << i;
  }
}

TEST(TrainerTest, MoeModelTrainsUnderTpAndDp) {
  ModelConfig model = TinyMoe();
  TrainingRun baseline(ConfigFor(model, {1, 1, 1, 1, 0, 1}));
  TrainingRun parallel(ConfigFor(model, {2, 1, 2, 1, 1, 1}));
  auto lb = baseline.Train(1, 5);
  auto lp = parallel.Train(1, 5);
  for (size_t i = 0; i < lb.size(); ++i) {
    EXPECT_NEAR(lp[i], lb[i], 5e-3) << "iter " << i;
  }
}

TEST(TrainerTest, MoeExpertShardingMatchesFfnSharding) {
  // The two MoE sharding modes (TP inside each expert vs whole-expert parallelism) compute
  // the same mathematics; trajectories agree to reduction-order noise.
  ModelConfig ffn_mode = TinyMoe();
  ModelConfig expert_mode = TinyMoe();
  expert_mode.moe_expert_sharding = true;
  TrainingRun a(ConfigFor(ffn_mode, {2, 1, 1, 1, 0, 1}));
  TrainingRun b(ConfigFor(expert_mode, {2, 1, 1, 1, 0, 1}));
  auto la = a.Train(1, 5);
  auto lb = b.Train(1, 5);
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_NEAR(la[i], lb[i], 5e-3) << "iter " << i;
  }
}

TEST(TrainerTest, TiedEmbeddingCopiesStayIdenticalAcrossStages) {
  ModelConfig model = TinyGpt();
  model.arch = ArchKind::kBloom;
  model.tied_embeddings = true;
  TrainerConfig cfg = ConfigFor(model, {1, 2, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 5);
  // After training, the first-stage copy and the last-stage copy must be bit-identical.
  ParamPtr first = run.trainer(0).model().store().FindOrNull(
      "language_model.embedding.word_embeddings.weight");
  ParamPtr last = run.trainer(1).model().store().FindOrNull(
      "language_model.embedding.word_embeddings.weight");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(last, nullptr);
  EXPECT_TRUE(last->tied_secondary);
  EXPECT_TRUE(Tensor::BitEqual(first->value, last->value));
}

TEST(TrainerTest, SpNormReplicasDriftAsDesigned) {
  // Sequence parallelism deliberately skips gradient sync for norm parameters; after a few
  // steps the SP replicas differ (this is exactly what params_to_average repairs).
  TrainerConfig cfg = ConfigFor(TinyGpt(), {1, 1, 1, 2, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 5);
  ParamPtr sp0 = run.trainer(0).model().store().FindOrNull(
      "language_model.encoder.layers.0.input_layernorm.weight");
  ParamPtr sp1 = run.trainer(1).model().store().FindOrNull(
      "language_model.encoder.layers.0.input_layernorm.weight");
  ASSERT_NE(sp0, nullptr);
  ASSERT_NE(sp1, nullptr);
  EXPECT_FALSE(Tensor::BitEqual(sp0->value, sp1->value));
  // But the drift is small: both followed near-identical gradients.
  EXPECT_TRUE(Tensor::AllClose(sp0->value, sp1->value, 5e-2f, 5e-2f));
}

TEST(TrainerTest, MptBf16TrainsAndDiffersFromF32) {
  ModelConfig model = TinyGpt();
  TrainerConfig f32 = ConfigFor(model, {1, 1, 1, 1, 0, 1});
  TrainerConfig bf16 = f32;
  bf16.compute_dtype = DType::kBF16;
  auto lf = TrainingRun(f32).Train(1, 5);
  auto lb = TrainingRun(bf16).Train(1, 5);
  EXPECT_NE(lf.back(), lb.back());
  EXPECT_NEAR(lf.back(), lb.back(), 0.05);
}

}  // namespace
}  // namespace ucp
