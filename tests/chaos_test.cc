// The survivability chaos matrix: every way a remote checkpoint session can lose its
// transport — connection drops mid-stream, the daemon dying and restarting, a client
// partitioned past its lease TTL, drain mode — either resumes and commits bit-exactly or
// fails typed with the store left fsck-clean. Scenarios:
//
//  1. Connection drop mid-WRITE_CHUNK: the leased client reconnects transparently, asks
//     WRITE_RESUME how far the upload got, resumes from the acknowledged offset (not byte
//     zero), and the committed bytes read back bit-exactly.
//  2. Daemon kill + restart mid-stream: the lease journal re-adopts the half-staged tag,
//     the client redials and resumes, and the tag commits bit-exactly.
//  3. Lease expiry with a partitioned client: expiry (not socket death) reaps the staged
//     bytes and the lease, no partial tag ever becomes visible, and the store keeps
//     accepting fresh saves.
//  4. Connection drop during CHUNK_QUERY / CHUNK_PUT: the incremental path resumes over
//     reconnect and the committed manifest reassembles bit-exactly from the chunk index.
//  5. Drain mode: SESSION_OPEN / SESSION_RENEW are refused with a typed kUnavailable
//     carrying a machine-readable retry-after hint; established sessions keep working.
//  6. The soak driver's through_daemon mode executes a generated chaos schedule (conn
//     drops + daemon restarts) with zero invariant violations and replays byte-exactly.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/common/bytes.h"
#include "src/common/fs.h"
#include "src/model/config.h"
#include "src/obs/metrics.h"
#include "src/soak/driver.h"
#include "src/soak/schedule.h"
#include "src/store/chunk_index.h"
#include "src/store/chunk_manifest.h"
#include "src/store/remote_store.h"
#include "src/store/server.h"
#include "src/store/wire.h"
#include "src/tensor/chunk_digest.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Value();
}

std::string MetaJson(int64_t iteration) {
  CheckpointMeta meta;
  meta.model = TinyGpt();
  meta.strategy = ParallelConfig{1, 1, 1, 1, 0, 1};
  meta.iteration = iteration;
  meta.global_batch = 8;
  return meta.ToJson().Dump(2);
}

std::vector<uint8_t> Payload(size_t size, uint8_t seed) {
  std::vector<uint8_t> data(size);
  for (size_t i = 0; i < size; ++i) {
    data[i] = static_cast<uint8_t>(seed + (i * 131 + i / 4093) % 251);
  }
  return data;
}

void ExpectFileEquals(Store& store, const std::string& rel,
                      const std::vector<uint8_t>& want) {
  Result<std::unique_ptr<ByteSource>> src = store.OpenRead(rel);
  ASSERT_TRUE(src.ok()) << rel << ": " << src.status();
  ASSERT_EQ((*src)->size(), want.size()) << rel;
  std::vector<uint8_t> got(want.size());
  if (!want.empty()) {
    ASSERT_TRUE((*src)->ReadAt(0, got.data(), got.size()).ok()) << rel;
  }
  EXPECT_TRUE(got == want) << rel << " read back different bytes";
}

// Waits (wall clock, generous under sanitizers) until `pred` holds.
bool PollUntil(const std::function<bool()>& pred, int deadline_ms = 20000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return pred();
}

// True when the daemon's anomaly flight recorder left a dump for `label` under
// <root>/flightrec/ (files are named flight-<seq>-serverd-<label>.*).
bool HasFlightRecordDump(const std::string& root, const std::string& label) {
  const std::string dir = PathJoin(root, "flightrec");
  if (!DirExists(dir)) {
    return false;
  }
  Result<std::vector<std::string>> entries = ListDir(dir);
  if (!entries.ok()) {
    return false;
  }
  const std::string needle = "serverd-" + label;
  for (const std::string& name : *entries) {
    if (name.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

class ChaosStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = *MakeTempDir("chaos_store");
    StartServer();
  }

  void TearDown() override {
    ClearSocketFaults();
    store_.reset();
    StopServer(/*drain=*/true);
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  StoreServerOptions ServerOptions() const {
    StoreServerOptions options;
    options.root = dir_;
    options.listen = "unix:" + dir_ + ".sock";  // sibling path: keeps List("") clean
    options.max_lease_ttl_ms = max_lease_ttl_ms_;
    return options;
  }

  void StartServer() {
    Result<std::unique_ptr<StoreServer>> started = StoreServer::Start(ServerOptions());
    ASSERT_TRUE(started.ok()) << started.status();
    server_ = std::move(*started);
  }

  void StopServer(bool drain) {
    if (server_ != nullptr) {
      server_->Shutdown(drain);
      server_.reset();
    }
  }

  // The "daemon was kill -9'd and came back" transition: no drain, same root, same
  // socket path, lease journal recovery on the way up.
  void HardRestartServer() {
    StopServer(/*drain=*/false);
    StartServer();
  }

  std::shared_ptr<RemoteStore> Connect(const RemoteStoreOptions& options) {
    Result<std::shared_ptr<RemoteStore>> opened =
        RemoteStore::Connect(server_->endpoint(), options);
    EXPECT_TRUE(opened.ok()) << opened.status();
    return opened.ok() ? *opened : nullptr;
  }

  std::string dir_;
  uint32_t max_lease_ttl_ms_ = 60000;
  std::unique_ptr<StoreServer> server_;
  std::shared_ptr<RemoteStore> store_;
};

// ---------------------------------------------------------------------------------------
// 1. Connection drop mid-WRITE: reconnect + WRITE_RESUME, bit-exact commit, and the
//    resumed upload re-sends less than it salvaged.
// ---------------------------------------------------------------------------------------

TEST_F(ChaosStoreTest, ConnDropMidWriteResumesAndCommitsBitExact) {
  store_ = Connect(RemoteStoreOptions{});
  ASSERT_NE(store_, nullptr);
  ASSERT_FALSE(store_->lease_token().empty());

  const uint64_t reconnects0 = CounterValue("store.client.reconnects");
  const uint64_t resumed0 = CounterValue("store.client.resumed_bytes");
  const uint64_t restarted0 = CounterValue("store.client.restarted_bytes");

  // Three saves, each with a connection drop armed at a different depth into the chunk
  // stream (counted from arming: BEGIN + its OK are sends 1..2, chunks start at 3).
  const std::vector<uint8_t> body = Payload(6u * 1024 * 1024 + 13, 7);
  const int cut_points[] = {3, 5, 9};
  for (int op = 0; op < 3; ++op) {
    const std::string tag = "global_step" + std::to_string(op + 1);
    ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
    Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ArmSocketFault({SocketFault::Op::kSend, SocketFault::Kind::kEconnreset,
                    cut_points[op], 0});
    Status wrote = (*writer)->WriteFile("shard", body.data(), body.size());
    ClearSocketFaults();
    ASSERT_TRUE(wrote.ok()) << wrote.ToString();
    ASSERT_TRUE(store_->CommitTag(tag, MetaJson(op + 1)).ok());
    ExpectFileEquals(*store_, JoinRel(tag, "shard"), body);
  }

  const uint64_t reconnects = CounterValue("store.client.reconnects") - reconnects0;
  const uint64_t resumed = CounterValue("store.client.resumed_bytes") - resumed0;
  const uint64_t restarted = CounterValue("store.client.restarted_bytes") - restarted0;
  EXPECT_GE(reconnects, 3u);
  // The whole point of WRITE_RESUME: across the three drops the client salvaged
  // acknowledged prefixes and re-sent strictly less than it salvaged. (The tight <50%
  // re-send bound is measured by the fig15_server chaos arm.)
  EXPECT_GT(resumed, 0u);
  EXPECT_LT(restarted, resumed);

  // Store-level cleanliness: no stale staging dirs, no dangling latest pointer. (The
  // synthetic "shard" payloads are not full checkpoints, so per-tag shard validation
  // does not apply here.)
  Result<FsckReport> fsck = Fsck(dir_, /*quarantine=*/false);
  ASSERT_TRUE(fsck.ok()) << fsck.status();
  EXPECT_TRUE(fsck->notes.empty()) << fsck->ToString();
}

// ---------------------------------------------------------------------------------------
// 2. Daemon kill + restart mid-stream: journal re-adopts the lease and its half-staged
//    tag; the client redials, resumes, and commits bit-exactly.
// ---------------------------------------------------------------------------------------

TEST_F(ChaosStoreTest, DaemonKillRestartMidStreamResumesViaJournal) {
  store_ = Connect(RemoteStoreOptions{});
  ASSERT_NE(store_, nullptr);
  ASSERT_FALSE(store_->lease_token().empty());

  const uint64_t reconnects0 = CounterValue("store.client.reconnects");
  const uint64_t adopted0 = CounterValue("store.server.journal_adopted_leases");

  const std::string tag = "global_step5";
  const std::vector<uint8_t> file_a = Payload(2u * 1024 * 1024, 21);
  const std::vector<uint8_t> file_b = Payload(6u * 1024 * 1024 + 5, 22);
  ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
  Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->WriteFile("a", file_a.data(), file_a.size()).ok());

  // Park the upload of "b" mid-chunk-stream (sends since arming: BEGIN=1, its OK=2,
  // chunks from 3 — the 5th send is always a client chunk send) long enough for the
  // daemon to be killed and restarted underneath it.
  ArmSocketFault({SocketFault::Op::kSend, SocketFault::Kind::kDelay, 5, 800});
  Status wrote_b = InternalError("not run");
  std::thread uploader([&] {
    wrote_b = (*writer)->WriteFile("b", file_b.data(), file_b.size());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  HardRestartServer();

  // The restarted daemon re-adopted the live lease from the journal, with the staged
  // charge recomputed from what actually survived on disk (file "a" at minimum).
  EXPECT_GE(CounterValue("store.server.journal_adopted_leases") - adopted0, 1u);
  EXPECT_GE(server_->active_leases(), 1);
  EXPECT_GE(server_->staged_bytes(), file_a.size());
  // Adoption-after-restart is an anomaly worth a dossier: Start() dumps the flight
  // record synchronously once the journal has been replayed.
  EXPECT_TRUE(HasFlightRecordDump(dir_, "journal-adopt"))
      << "no flightrec dump for journal adoption under " << dir_;

  uploader.join();
  ClearSocketFaults();
  ASSERT_TRUE(wrote_b.ok()) << wrote_b.ToString();
  EXPECT_GE(CounterValue("store.client.reconnects") - reconnects0, 1u);

  ASSERT_TRUE(store_->CommitTag(tag, MetaJson(5)).ok());
  ExpectFileEquals(*store_, JoinRel(tag, "a"), file_a);
  ExpectFileEquals(*store_, JoinRel(tag, "b"), file_b);

  // Store-level cleanliness: no stale staging dirs, no dangling latest pointer. (The
  // synthetic "shard" payloads are not full checkpoints, so per-tag shard validation
  // does not apply here.)
  Result<FsckReport> fsck = Fsck(dir_, /*quarantine=*/false);
  ASSERT_TRUE(fsck.ok()) << fsck.status();
  EXPECT_TRUE(fsck->notes.empty()) << fsck->ToString();
}

// ---------------------------------------------------------------------------------------
// 3. Lease expiry with a partitioned client: TTL expiry — not socket death — reaps the
//    staged bytes and the lease; no partial tag becomes visible; the store keeps working.
// ---------------------------------------------------------------------------------------

TEST_F(ChaosStoreTest, LeaseExpiryReapsPartitionedClientState) {
  // Rebind the daemon with a short lease clamp so expiry happens on test time scales.
  // Not TOO short: the server only refreshes the lease when a frame arrives, so the TTL
  // must comfortably exceed any scheduling stall between the doomed client's frames (and
  // between its last frame and the socket teardown) under a loaded sanitizer run --
  // otherwise the lease dies mid-write, or teardown releases it before the reaper can
  // count the expiry.
  StopServer(/*drain=*/true);
  max_lease_ttl_ms_ = 2000;
  StartServer();

  const uint64_t expiries0 = CounterValue("store.server.lease_expiries");

  const std::string tag = "global_step9";
  const std::vector<uint8_t> body = Payload(1u * 1024 * 1024, 33);
  {
    std::shared_ptr<RemoteStore> doomed = Connect(RemoteStoreOptions{});
    ASSERT_NE(doomed, nullptr);
    ASSERT_FALSE(doomed->lease_token().empty());  // granted, clamped to 2s
    ASSERT_TRUE(doomed->ResetTagStaging(tag).ok());
    Result<std::unique_ptr<StoreWriter>> writer = doomed->OpenTagForWrite(tag);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->WriteFile("shard", body.data(), body.size()).ok());
    EXPECT_GE(server_->staged_bytes(), body.size());
    // The client partitions away mid-save and never comes back.
    doomed->CloseForTest();
  }

  // Socket death alone must NOT have released anything; expiry must. Poll past the TTL.
  EXPECT_TRUE(PollUntil([&] {
    return server_->staged_bytes() == 0 && server_->active_leases() == 0;
  })) << "staged=" << server_->staged_bytes() << " leases=" << server_->active_leases();
  EXPECT_GE(CounterValue("store.server.lease_expiries") - expiries0, 1u);

  // The reaper leaves a server-side flight-record dump for the expiry (trace ring +
  // metrics snapshot), written off the lock after the lease is reclaimed.
  EXPECT_TRUE(PollUntil([&] { return HasFlightRecordDump(dir_, "lease-expiry"); }))
      << "no flightrec dump for the expired lease under " << dir_;

  // The half-staged tag never became visible, and a fresh client can commit over it.
  store_ = Connect(RemoteStoreOptions{});
  ASSERT_NE(store_, nullptr);
  EXPECT_FALSE(IsTagComplete(*store_, tag));
  ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
  Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->WriteFile("shard", body.data(), body.size()).ok());
  ASSERT_TRUE(store_->CommitTag(tag, MetaJson(9)).ok());
  ExpectFileEquals(*store_, JoinRel(tag, "shard"), body);
}

// ---------------------------------------------------------------------------------------
// 4. Connection drop during the incremental CHUNK_QUERY / CHUNK_PUT path: the pinned
//    query and chunk uploads ride the reconnect, and the committed manifest reassembles
//    the file bit-exactly from the shared chunk index.
// ---------------------------------------------------------------------------------------

TEST_F(ChaosStoreTest, ConnDropDuringChunkedWriteResumesAndCommits) {
  store_ = Connect(RemoteStoreOptions{});
  ASSERT_NE(store_, nullptr);

  const uint64_t reconnects0 = CounterValue("store.client.reconnects");

  const std::string tag = "global_step3";
  const std::vector<uint8_t> body = Payload(24 * kManifestChunkBytes + 101, 55);
  const std::vector<uint64_t> digests = ComputeChunkDigests(body.data(), body.size());
  Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->SupportsChunked());

  ArmSocketFault({SocketFault::Op::kSend, SocketFault::Kind::kEconnreset, 6, 0});
  Result<ChunkedWriteStats> stats = (*writer)->WriteFileChunked(
      "shard.bin", body.data(), body.size(), digests, /*compress=*/true, /*inherited=*/0);
  ClearSocketFaults();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->bytes_total, body.size());
  EXPECT_EQ(stats->chunks_total, digests.size());
  ASSERT_TRUE((*writer)->FinalizeManifest("").ok());
  ASSERT_TRUE(store_->CommitTag(tag, MetaJson(3)).ok());
  EXPECT_GE(CounterValue("store.client.reconnects") - reconnects0, 1u);

  // Reassemble through the committed manifest + chunk index and compare bit-exactly.
  Result<std::string> manifest_text =
      store_->ReadSmallFile(JoinRel(tag, kChunkManifestName));
  ASSERT_TRUE(manifest_text.ok()) << manifest_text.status();
  Result<ChunkManifest> manifest = ParseChunkManifest(*manifest_text);
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  const ChunkManifestEntry* entry = manifest->Find("shard.bin");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->size, body.size());
  std::shared_ptr<ChunkIndex> index = ChunkIndex::ForRoot(dir_);
  std::vector<uint8_t> reassembled;
  reassembled.reserve(body.size());
  for (uint64_t digest : entry->chunks) {
    Result<std::vector<uint8_t>> chunk = index->ReadChunk(digest);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    reassembled.insert(reassembled.end(), chunk->begin(), chunk->end());
  }
  reassembled.resize(entry->size);
  EXPECT_TRUE(reassembled == body) << "chunked shard reassembled different bytes";
}

// ---------------------------------------------------------------------------------------
// 5. Drain mode: SESSION_OPEN / SESSION_RENEW refused with typed kUnavailable + a
//    retry-after hint; established sessions keep serving.
// ---------------------------------------------------------------------------------------

// One raw frame exchange on `fd`; the drain refusal's retry-after hint is not surfaced
// by RemoteStore's public API, so the wire payload is checked directly.
WireFrame MustExchange(int fd, WireOp op, const std::vector<uint8_t>& payload) {
  Status sent = SendFrame(fd, op, payload);
  EXPECT_TRUE(sent.ok()) << sent.ToString();
  Result<WireFrame> reply = RecvFrame(fd);
  EXPECT_TRUE(reply.ok()) << reply.status();
  return reply.ok() ? *reply : WireFrame{};
}

TEST_F(ChaosStoreTest, DrainRefusesNewLeasesWithRetryAfterHint) {
  // An established, leased session from before the drain.
  store_ = Connect(RemoteStoreOptions{});
  ASSERT_NE(store_, nullptr);
  ASSERT_FALSE(store_->lease_token().empty());

  // A raw v3 connection whose SESSION_RENEW we can inspect byte-for-byte.
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::thread serve([&] { server_->ServeConnectionForTest(sv[1]); });
  {
    ByteWriter hello;
    hello.PutU32(kWireMinVersion);
    hello.PutU32(kWireVersion);
    EXPECT_EQ(MustExchange(sv[0], WireOp::kHello, hello.buffer()).op, WireOp::kHelloOk);
    ByteWriter open;
    open.PutString("chaos-drain-lease");
    open.PutU32(5000);
    EXPECT_EQ(MustExchange(sv[0], WireOp::kSessionOpen, open.buffer()).op,
              WireOp::kSessionOpenOk);
  }

  server_->BeginDrain();
  EXPECT_TRUE(server_->draining());

  // Renewals on the raw session are refused typed, with the machine-readable hint.
  auto expect_drain_refusal = [](const WireFrame& reply) {
    ASSERT_EQ(reply.op, WireOp::kError);
    ByteReader r(reply.payload.data(), reply.payload.size());
    Result<uint8_t> code = r.GetU8();
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(*code, static_cast<uint8_t>(StatusCode::kUnavailable));
    Result<std::string> message = r.GetString();
    ASSERT_TRUE(message.ok());
    EXPECT_NE(message->find("drain"), std::string::npos) << *message;
    ASSERT_GE(r.remaining(), 4u) << "drain refusal is missing the retry-after hint";
    Result<uint32_t> hint = r.GetU32();
    ASSERT_TRUE(hint.ok());
    EXPECT_EQ(*hint, 1000u);
  };
  expect_drain_refusal(MustExchange(sv[0], WireOp::kSessionRenew, {}));

  // New SESSION_OPENs are refused the same way — both on the wire and at the client,
  // where Connect surfaces the refusal as a typed kUnavailable.
  ByteWriter open;
  open.PutString("chaos-drain-lease-2");
  open.PutU32(5000);
  expect_drain_refusal(MustExchange(sv[0], WireOp::kSessionOpen, open.buffer()));
  Result<std::shared_ptr<RemoteStore>> refused =
      RemoteStore::Connect(server_->endpoint(), RemoteStoreOptions{});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable) << refused.status();

  ::close(sv[0]);
  serve.join();

  // The established session keeps serving: saves finish during drain, and SERVER_STAT
  // advertises the drain so orchestration can route new work elsewhere.
  Result<RemoteServerStat> stat = store_->ServerStat();
  ASSERT_TRUE(stat.ok()) << stat.status();
  EXPECT_TRUE(stat->draining);
  const std::string tag = "global_step2";
  ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
  Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string("drained save")).ok());
  ASSERT_TRUE(store_->CommitTag(tag, MetaJson(2)).ok());
  EXPECT_TRUE(IsTagComplete(*store_, tag));
}

// ---------------------------------------------------------------------------------------
// 6. The soak driver's through_daemon mode: a generated schedule that interleaves
//    training with connection drops and daemon restarts runs with zero invariant
//    violations (I1–I8) and its failure log replays byte-identically.
// ---------------------------------------------------------------------------------------

TEST(ChaosSoakTest, ThroughDaemonScheduleRunsCleanAndReplays) {
  SoakOptions options;
  options.seed = 20260807;
  options.num_blocks = 3;
  options.max_train_iters = 3;
  options.max_kills = 1;
  options.job = "chaos_soak";
  options.through_daemon = true;
  options.dir = *MakeTempDir("chaos_soak");

  SoakRunReport report = RunSoak(options);
  EXPECT_TRUE(report.ok) << report.status.ToString();
  EXPECT_TRUE(report.violations.empty())
      << report.violations.size() << " violations, first: " << report.violations.front();
  EXPECT_GT(report.invariant_checks, 0);
  // Generation places one connection drop and one daemon restart unconditionally.
  EXPECT_GE(report.conn_drops_armed, 1);
  EXPECT_GE(report.daemon_restarts, 1);

  const std::string fresh = *MakeTempDir("chaos_soak_replay");
  Result<SoakRunReport> replay = ReplaySoakLog(report.LogText(), fresh);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->violations.empty());
  EXPECT_EQ(replay->LogText(), report.LogText()) << "through_daemon replay diverged";

  ASSERT_TRUE(RemoveAll(options.dir).ok());
  ASSERT_TRUE(RemoveAll(fresh).ok());
}

}  // namespace
}  // namespace ucp
