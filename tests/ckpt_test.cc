// Native distributed checkpointing: save/load round trips, strict-load failure on strategy
// mismatch (the Fig. 1 behaviour), corruption handling, and the foreign DDP-style format.

#include <gtest/gtest.h>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/foreign.h"
#include "src/common/fs.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/atom.h"

namespace ucp {
namespace {

TrainerConfig ConfigFor(const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  cfg.lr.warmup_iters = 2;
  cfg.lr.decay_iters = 30;
  return cfg;
}

class CkptTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_ckpt_test"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  void SaveAll(TrainingRun& run, int64_t iteration) {
    run.Run([&](RankTrainer& t) {
      Status s = SaveDistributedCheckpoint(dir_, t, iteration);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }

  std::string dir_;
};

TEST_F(CkptTest, MetaJsonRoundTrip) {
  CheckpointMeta meta;
  meta.model = TinyLlama();
  meta.strategy = {2, 2, 2, 1, 1, 2};
  meta.iteration = 123;
  meta.global_batch = 64;
  meta.data_seed = 99;
  meta.compute_dtype = DType::kBF16;
  Result<CheckpointMeta> back = CheckpointMeta::FromJson(meta.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->model == meta.model);
  EXPECT_TRUE(back->strategy == meta.strategy);
  EXPECT_EQ(back->iteration, 123);
  EXPECT_EQ(back->compute_dtype, DType::kBF16);
}

TEST_F(CkptTest, FileNamingMatchesLayout) {
  EXPECT_EQ(TagForIteration(100), "global_step100");
  EXPECT_EQ(ModelStatesFileName(1, 2, 0), "mp_rank_01_002_sp_00_model_states");
  EXPECT_EQ(OptimStatesFileName(3, 0, 1, 0), "zero_pp_rank_3_mp_rank_00_001_sp_00_optim_states");
}

TEST_F(CkptTest, SaveWritesExpectedFiles) {
  TrainingRun run(ConfigFor({2, 2, 2, 1, 1, 1}));
  run.Train(1, 2);
  SaveAll(run, 2);

  EXPECT_EQ(*ReadLatestTag(dir_), "global_step2");
  std::string tag_dir = PathJoin(dir_, "global_step2");
  auto files = *ListDir(tag_dir);
  // 8 optim files (one per rank), 4 model-states files (per tp x pp), 1 meta, 1 marker.
  EXPECT_EQ(files.size(), 14u);
  EXPECT_TRUE(IsTagComplete(dir_, "global_step2"));
  Result<CheckpointMeta> meta = ReadCheckpointMeta(dir_, "global_step2");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->iteration, 2);
}

TEST_F(CkptTest, SameConfigResumeIsBitExact) {
  TrainerConfig cfg = ConfigFor({2, 1, 2, 1, 1, 1});
  TrainingRun run(cfg);
  run.Train(1, 4);
  SaveAll(run, 4);
  auto continued = run.Train(5, 8);

  TrainingRun resumed(cfg);
  resumed.Run([&](RankTrainer& t) {
    Status s = LoadDistributedCheckpoint(dir_, "global_step4", t);
    UCP_CHECK(s.ok()) << s.ToString();
  });
  auto after = resumed.Train(5, 8);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_DOUBLE_EQ(after[i], continued[i]) << "iter " << 5 + i;
  }
}

TEST_F(CkptTest, Zero3SaveLoadRoundTrip) {
  TrainerConfig cfg = ConfigFor({1, 1, 2, 1, 3, 1});
  TrainingRun run(cfg);
  run.Train(1, 3);
  SaveAll(run, 3);
  auto continued = run.Train(4, 6);

  TrainingRun resumed(cfg);
  resumed.Run([&](RankTrainer& t) {
    Status s = LoadDistributedCheckpoint(dir_, "global_step3", t);
    UCP_CHECK(s.ok()) << s.ToString();
  });
  auto after = resumed.Train(4, 6);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_DOUBLE_EQ(after[i], continued[i]);
  }
}

// The Fig. 1 failure mode: strict native loading rejects any strategy change.
TEST_F(CkptTest, StrategyMismatchIsFailedPrecondition) {
  TrainingRun source(ConfigFor({2, 1, 2, 1, 1, 1}));
  source.Train(1, 2);
  SaveAll(source, 2);

  for (ParallelConfig target : {ParallelConfig{1, 1, 4, 1, 1, 1},   // different grid
                                ParallelConfig{2, 1, 2, 1, 2, 1},   // different ZeRO stage
                                ParallelConfig{1, 2, 2, 1, 1, 1}}) {
    TrainingRun run(ConfigFor(target));
    std::vector<Status> statuses(static_cast<size_t>(run.world_size()));
    run.Run([&](RankTrainer& t) {
      statuses[static_cast<size_t>(t.rank())] =
          LoadDistributedCheckpoint(dir_, "global_step2", t);
    });
    for (const Status& s : statuses) {
      EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition) << target.ToString();
    }
  }
}

TEST_F(CkptTest, ModelMismatchRejected) {
  TrainingRun source(ConfigFor({1, 1, 1, 1, 0, 1}));
  source.Train(1, 1);
  SaveAll(source, 1);

  TrainerConfig other = ConfigFor({1, 1, 1, 1, 0, 1});
  other.model = TinyLlama();
  TrainingRun run(other);
  Status s = LoadDistributedCheckpoint(dir_, "global_step1", run.trainer(0));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(CkptTest, MissingTagIsNotFound) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  Status s = LoadDistributedCheckpoint(dir_, "global_step999", run.trainer(0));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(CkptTest, CorruptedOptimFileIsDataLoss) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 1);
  SaveAll(run, 1);
  std::string path =
      PathJoin(PathJoin(dir_, "global_step1"), OptimStatesFileName(0, 0, 0, 0));
  std::string contents = *ReadFileToString(path);
  contents[contents.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());

  TrainingRun fresh(cfg);
  Status s = LoadDistributedCheckpoint(dir_, "global_step1", fresh.trainer(0));
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST_F(CkptTest, LatestTagTracksNewestSave) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 1);
  SaveAll(run, 1);
  run.Train(2, 2);
  SaveAll(run, 2);
  EXPECT_EQ(*ReadLatestTag(dir_), "global_step2");
}

TEST_F(CkptTest, TiedSecondaryExcludedFromModelStates) {
  TrainerConfig cfg = ConfigFor({1, 2, 1, 1, 0, 1});
  cfg.model.arch = ArchKind::kBloom;
  cfg.model.tied_embeddings = true;
  TrainingRun run(cfg);
  run.Train(1, 1);
  SaveAll(run, 1);
  // Last-stage model states must not carry the tied embedding copy.
  Result<BundleInfo> info = StatBundle(
      PathJoin(PathJoin(dir_, "global_step1"), ModelStatesFileName(0, 1, 0)));
  ASSERT_TRUE(info.ok());
  for (const auto& [name, unused] : info->entries) {
    EXPECT_NE(name, "language_model.embedding.word_embeddings.weight");
  }
}

// ---------------- Metadata negative paths ----------------
// Damaged metadata must come back as a Status, never a crash or a silently-default config.

TEST_F(CkptTest, TruncatedMetaJsonIsError) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 1);
  SaveAll(run, 1);
  std::string path = PathJoin(PathJoin(dir_, "global_step1"), "checkpoint_meta.json");
  std::string text = *ReadFileToString(path);
  ASSERT_TRUE(WriteFileAtomic(path, text.substr(0, text.size() / 2)).ok());
  EXPECT_FALSE(ReadCheckpointMeta(dir_, "global_step1").ok());
}

TEST_F(CkptTest, MetaWrongFormatVersionIsFailedPrecondition) {
  CheckpointMeta meta;
  meta.model = TinyGpt();
  Json json = meta.ToJson();
  json["format_version"] = 999;
  EXPECT_EQ(CheckpointMeta::FromJson(json).status().code(),
            StatusCode::kFailedPrecondition);
  json["format_version"] = Json();  // wrong type entirely
  EXPECT_FALSE(CheckpointMeta::FromJson(json).ok());
}

TEST_F(CkptTest, MetaOutOfRangeDtypeIsDataLoss) {
  CheckpointMeta meta;
  meta.model = TinyGpt();
  Json json = meta.ToJson();
  json["compute_dtype"] = 42;
  EXPECT_EQ(CheckpointMeta::FromJson(json).status().code(), StatusCode::kDataLoss);
  json["compute_dtype"] = -1;
  EXPECT_EQ(CheckpointMeta::FromJson(json).status().code(), StatusCode::kDataLoss);
}

TEST_F(CkptTest, MetaMissingModelOrStrategyIsDataLoss) {
  CheckpointMeta meta;
  meta.model = TinyGpt();
  for (const char* key : {"model", "strategy"}) {
    JsonObject obj = meta.ToJson().AsObject();
    obj.erase(key);
    EXPECT_EQ(CheckpointMeta::FromJson(Json(std::move(obj))).status().code(),
              StatusCode::kDataLoss)
        << key;
  }
}

TEST_F(CkptTest, UcpMetaMissingOrMalformedAtomNamesIsError) {
  UcpMeta meta;
  meta.model = TinyGpt();
  meta.atom_names = {"a.weight", "b.bias"};
  ASSERT_TRUE(UcpMeta::FromJson(meta.ToJson()).ok());

  JsonObject no_atoms = meta.ToJson().AsObject();
  no_atoms.erase("atoms");
  EXPECT_FALSE(UcpMeta::FromJson(Json(std::move(no_atoms))).ok());

  Json bad_entry = meta.ToJson();
  bad_entry["atoms"] = Json(JsonArray{Json("ok"), Json(int64_t{7})});
  EXPECT_EQ(UcpMeta::FromJson(bad_entry).status().code(), StatusCode::kDataLoss);
}

// ---------------- Retention ----------------

TEST_F(CkptTest, ListCheckpointTagsSortedByIteration) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  for (int64_t it : {9, 100, 2}) {  // lexicographic order differs from numeric
    run.Train(it, it);
    SaveAll(run, it);
  }
  EXPECT_EQ(*ListCheckpointTags(dir_),
            (std::vector<std::string>{"global_step2", "global_step9", "global_step100"}));
}

TEST_F(CkptTest, PruneKeepsNewestAndLatest) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  for (int64_t it = 1; it <= 5; ++it) {
    run.Train(it, it);
    SaveAll(run, it);
  }
  ASSERT_TRUE(PruneCheckpoints(dir_, 2).ok());
  EXPECT_EQ(*ListCheckpointTags(dir_),
            (std::vector<std::string>{"global_step4", "global_step5"}));
  EXPECT_EQ(*ReadLatestTag(dir_), "global_step5");
  // Pruning below the current count is a no-op; keep_last < 1 is rejected.
  ASSERT_TRUE(PruneCheckpoints(dir_, 10).ok());
  EXPECT_EQ(ListCheckpointTags(dir_)->size(), 2u);
  EXPECT_EQ(PruneCheckpoints(dir_, 0).code(), StatusCode::kInvalidArgument);
}

TEST_F(CkptTest, PruneNeverDeletesLatestEvenIfOldest) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 1);
  SaveAll(run, 1);
  run.Train(2, 2);
  SaveAll(run, 2);
  // Point `latest` at the older tag by hand (e.g. the newer save was rolled back).
  ASSERT_TRUE(WriteFileAtomic(PathJoin(dir_, "latest"), "global_step1").ok());
  ASSERT_TRUE(PruneCheckpoints(dir_, 1).ok());
  auto tags = *ListCheckpointTags(dir_);
  EXPECT_EQ(tags, (std::vector<std::string>{"global_step1"}));
}

// ---------------- Foreign format ----------------

TEST_F(CkptTest, ForeignSaveAndMeta) {
  TrainerConfig cfg = ConfigFor({1, 1, 2, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 3);
  run.Run([&](RankTrainer& t) {
    Status s = SaveForeignCheckpoint(dir_, t, 3);
    UCP_CHECK(s.ok()) << s.ToString();
  });
  Result<ForeignMeta> meta = ReadForeignMeta(dir_, "foreign_step3");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->iteration, 3);
  EXPECT_TRUE(meta->model == cfg.model);
}

TEST_F(CkptTest, ForeignRequiresDdpOnly) {
  TrainingRun run(ConfigFor({2, 1, 1, 1, 0, 1}));
  Status s = SaveForeignCheckpoint(dir_, run.trainer(0), 1);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ucp
