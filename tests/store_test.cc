// The Store abstraction and the ucp_serverd wire path, as properties:
//
//  1. Conformance: LocalStore and RemoteStore satisfy the same contract — staged
//     write/commit/read-back, uncommitted tags invisible, wholesale commit replacement,
//     job-scoped GC, idempotent delete — exercised by one parameterized suite.
//  2. Torn frames are rejected with a typed kDataLoss at the wire layer, and a server
//     that receives one closes the connection instead of misparsing the stream.
//  3. Transient socket errors (EINTR/EAGAIN/short transfers) are absorbed by the
//     IoRetryPolicy and surfaced in io.retry.*; they never fail a healthy exchange.
//  4. Admission control bounds in-flight staged bytes: a newcomer is rejected with
//     kUnavailable while the budget is held, and admitted once the holder commits.
//  5. A range read over a corrupted chunk fails kDataLoss on both backends (the daemon
//     verifies chunk CRCs server-side; the file views verify again client-side).
//  6. Kill-mid-save safety: a client that vanishes mid-stream or a daemon killed before
//     commit never yields a tag that resume/fsck would accept.
//  7. The sliced UCP loader is bit-exact over RemoteStore vs LocalStore across a
//     {TP}x{PP}x{DP} reconfiguration sweep.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/common/bytes.h"
#include "src/common/fs.h"
#include "src/common/json.h"
#include "src/model/config.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/trainer.h"
#include "src/store/remote_store.h"
#include "src/store/server.h"
#include "src/store/wire.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/converter.h"
#include "src/ucp/elastic.h"
#include "src/ucp/loader.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

uint64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Global().GetCounter(name).Value();
}

std::string MetaJson(int64_t iteration) {
  CheckpointMeta meta;
  meta.model = TinyGpt();
  meta.strategy = ParallelConfig{1, 1, 1, 1, 0, 1};
  meta.iteration = iteration;
  meta.global_batch = 8;
  return meta.ToJson().Dump(2);
}

// ---------------------------------------------------------------------------
// Property 1: backend conformance. Every test below runs once against a
// LocalStore on a temp dir and once against a RemoteStore talking to an
// in-process daemon serving the same dir. The remote_v2/remote_v1 rows pin the
// downgrade path: a v3 client against an older daemon must fall back cleanly
// (no lease, release-on-disconnect semantics) and still satisfy the identical
// contract bit-exactly.
// ---------------------------------------------------------------------------

class StoreConformanceTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    dir_ = *MakeTempDir("store_conf");
    if (remote()) {
      StoreServerOptions options;
      options.root = dir_;
      options.listen = "unix:" + dir_ + ".sock";  // sibling path: keeps List("") clean
      options.max_wire_version = server_version();
      Result<std::unique_ptr<StoreServer>> started =
          StoreServer::Start(std::move(options));
      ASSERT_TRUE(started.ok()) << started.status();
      server_ = std::move(*started);
      Result<std::shared_ptr<Store>> opened = OpenStore(server_->endpoint());
      ASSERT_TRUE(opened.ok()) << opened.status();
      store_ = *opened;
      // The downgrade fallback must be visible to the client: no lease against a
      // pre-lease daemon, a lease (by default) against a v3 one.
      auto* remote_store = static_cast<RemoteStore*>(store_.get());
      EXPECT_EQ(remote_store->negotiated_version(), server_version());
      EXPECT_EQ(remote_store->lease_token().empty(), server_version() < 3);
    } else {
      store_ = std::make_shared<LocalStore>(dir_);
    }
  }

  void TearDown() override {
    store_.reset();
    if (server_ != nullptr) {
      server_->Shutdown();
      server_.reset();
    }
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  bool remote() const { return std::string(GetParam()).rfind("remote", 0) == 0; }
  uint32_t server_version() const {
    const std::string param = GetParam();
    if (param == "remote_v1") return 1;
    if (param == "remote_v2") return 2;
    return kWireVersion;
  }

  void CommitSimpleTag(const std::string& tag, int64_t iteration,
                       const std::string& file = "shard",
                       const std::string& payload = "payload") {
    ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
    Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
    ASSERT_TRUE(writer.ok()) << writer.status();
    ASSERT_TRUE((*writer)->WriteFile(file, payload).ok());
    Status committed = store_->CommitTag(tag, MetaJson(iteration));
    ASSERT_TRUE(committed.ok()) << committed.ToString();
  }

  std::string dir_;
  std::unique_ptr<StoreServer> server_;
  std::shared_ptr<Store> store_;
};

INSTANTIATE_TEST_SUITE_P(Backends, StoreConformanceTest,
                         ::testing::Values("local", "remote", "remote_v2", "remote_v1"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST_P(StoreConformanceTest, StagedCommitRoundTrip) {
  const std::string tag = "global_step1";
  ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
  Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
  ASSERT_TRUE(writer.ok()) << writer.status();
  EXPECT_EQ((*writer)->tag(), tag);

  // One small file and one file large enough to stream as several wire chunks.
  ASSERT_TRUE((*writer)->WriteFile("small", std::string("hello store")).ok());
  std::vector<uint8_t> big(3u * 1024 * 1024 + 7);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>((i * 131) & 0xff);
  }
  ASSERT_TRUE((*writer)->WriteFile("big", big).ok());

  // Nothing is visible before commit.
  EXPECT_FALSE(IsTagComplete(*store_, tag));
  ASSERT_TRUE(store_->CommitTag(tag, MetaJson(1)).ok());
  EXPECT_TRUE(IsTagComplete(*store_, tag));

  Result<std::string> small = store_->ReadSmallFile(JoinRel(tag, "small"));
  ASSERT_TRUE(small.ok()) << small.status();
  EXPECT_EQ(*small, "hello store");

  Result<std::unique_ptr<ByteSource>> source = store_->OpenRead(JoinRel(tag, "big"));
  ASSERT_TRUE(source.ok()) << source.status();
  EXPECT_EQ((*source)->size(), big.size());
  // Positional reads at the start, across the 1 MiB wire-chunk boundary, and the tail.
  for (uint64_t offset : {uint64_t{0}, uint64_t{(1u << 20) - 3}, uint64_t{big.size() - 9}}) {
    uint8_t buf[16] = {0};
    const size_t n = std::min<size_t>(sizeof(buf), big.size() - offset);
    ASSERT_TRUE((*source)->ReadAt(offset, buf, n).ok()) << offset;
    EXPECT_EQ(std::memcmp(buf, big.data() + offset, n), 0) << offset;
  }

  Result<std::vector<std::string>> entries = store_->List(tag);
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_NE(std::find(entries->begin(), entries->end(), "big"), entries->end());
  EXPECT_NE(std::find(entries->begin(), entries->end(), "small"), entries->end());
  EXPECT_NE(std::find(entries->begin(), entries->end(), "complete"), entries->end());

  Result<std::vector<std::string>> tags = store_->ListTags("");
  ASSERT_TRUE(tags.ok()) << tags.status();
  EXPECT_EQ(*tags, std::vector<std::string>{tag});
  Result<std::string> latest = ReadLatestTag(*store_);
  ASSERT_TRUE(latest.ok()) << latest.status();
  EXPECT_EQ(*latest, tag);
  Result<std::string> valid = FindLatestValidTag(*store_);
  ASSERT_TRUE(valid.ok()) << valid.status();
  EXPECT_EQ(*valid, tag);
  Result<CheckpointMeta> meta = ReadCheckpointMeta(*store_, tag);
  ASSERT_TRUE(meta.ok()) << meta.status();
  EXPECT_EQ(meta->iteration, 1);
}

TEST_P(StoreConformanceTest, UncommittedTagsAreInvisibleAndSweepable) {
  const std::string tag = "global_step5";
  ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
  Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string("half a save")).ok());
  writer->reset();

  EXPECT_FALSE(IsTagComplete(*store_, tag));
  EXPECT_EQ(FindLatestValidTag(*store_).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(ReadCheckpointMeta(*store_, tag).ok());

  // Abort drops the staging dir; a second abort of the now-absent staging is OK.
  ASSERT_TRUE(store_->AbortTag(tag).ok());
  ASSERT_TRUE(store_->AbortTag(tag).ok());
  Result<bool> staged = store_->Exists(tag + ".staging");
  ASSERT_TRUE(staged.ok());
  EXPECT_FALSE(*staged);

  // Fresh debris (a crashed save that never aborted) is picked up by the sweeper.
  ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
  Result<int> swept = store_->SweepStagingDebris("");
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_GE(*swept, 1);
}

TEST_P(StoreConformanceTest, CommitWholesaleReplacesPreviousCommit) {
  CommitSimpleTag("global_step2", 2, "old_shard", "v1");
  CommitSimpleTag("global_step2", 2, "new_shard", "v2");
  Result<std::vector<std::string>> entries = store_->List("global_step2");
  ASSERT_TRUE(entries.ok()) << entries.status();
  EXPECT_NE(std::find(entries->begin(), entries->end(), "new_shard"), entries->end());
  EXPECT_EQ(std::find(entries->begin(), entries->end(), "old_shard"), entries->end());
}

TEST_P(StoreConformanceTest, GcIsJobScopedAndDryRunIsInert) {
  CommitSimpleTag("global_step1", 1);
  CommitSimpleTag("global_step2", 2);
  CommitSimpleTag("global_step3", 3);
  CommitSimpleTag("jobA.global_step7", 7);

  Result<GcReport> dry = store_->Gc("", 2, /*dry_run=*/true);
  ASSERT_TRUE(dry.ok()) << dry.status();
  EXPECT_EQ(dry->removed, std::vector<std::string>{"global_step1"});
  EXPECT_TRUE(IsTagComplete(*store_, "global_step1"));  // dry run deleted nothing

  Result<GcReport> wet = store_->Gc("", 2, /*dry_run=*/false);
  ASSERT_TRUE(wet.ok()) << wet.status();
  EXPECT_EQ(wet->removed, std::vector<std::string>{"global_step1"});
  EXPECT_FALSE(IsTagComplete(*store_, "global_step1"));
  EXPECT_TRUE(IsTagComplete(*store_, "global_step3"));
  // The sibling job's namespace was invisible to the sweep.
  EXPECT_TRUE(IsTagComplete(*store_, "jobA.global_step7"));
  Result<std::vector<std::string>> job_tags = store_->ListTags("jobA");
  ASSERT_TRUE(job_tags.ok());
  EXPECT_EQ(*job_tags, std::vector<std::string>{"jobA.global_step7"});
}

TEST_P(StoreConformanceTest, DeleteTagIsIdempotent) {
  CommitSimpleTag("global_step4", 4);
  ASSERT_TRUE(store_->DeleteTag("global_step4").ok());
  Result<bool> exists = store_->Exists("global_step4");
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
  ASSERT_TRUE(store_->DeleteTag("global_step4").ok());
}

// Property 5: a range read that touches a corrupted chunk is a typed kDataLoss through
// either backend; ranges that avoid the chunk still read clean.
TEST_P(StoreConformanceTest, RangeReadOverCorruptChunkIsTypedDataLoss) {
  // 256x320 fp32 = 327680 payload bytes = 5 chunks of 64 KiB.
  Tensor t = Tensor::Zeros({256, 320});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(i % 977) * 0.5f;
  }
  Result<std::vector<uint8_t>> bytes = SerializeTensor(t);
  ASSERT_TRUE(bytes.ok()) << bytes.status();

  const std::string tag = "global_step9";
  ASSERT_TRUE(store_->ResetTagStaging(tag).ok());
  Result<std::unique_ptr<StoreWriter>> writer = store_->OpenTagForWrite(tag);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->WriteFile("t", *bytes).ok());
  ASSERT_TRUE(store_->CommitTag(tag, MetaJson(9)).ok());

  // Flip one byte inside chunk 2, directly on the disk both backends bottom out in.
  const std::string path = PathJoin(dir_, PathJoin(tag, "t"));
  std::string raw = *ReadFileToString(path);
  uint64_t header_bytes = 0;
  std::memcpy(&header_bytes, raw.data() + 12, sizeof(header_bytes));
  raw[header_bytes + 2 * 65536 + 123] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, raw).ok());

  Result<std::unique_ptr<ByteSource>> source = store_->OpenRead(JoinRel(tag, "t"));
  ASSERT_TRUE(source.ok()) << source.status();
  Result<TensorFileView> view = TensorFileView::Open(std::move(*source));
  ASSERT_TRUE(view.ok()) << view.status();
  // Rows [0, 50) live in chunk 0 — clean and bit-exact.
  Result<Tensor> head = view->ReadRange(0, 50);
  ASSERT_TRUE(head.ok()) << head.status();
  EXPECT_TRUE(Tensor::BitEqual(*head, t.Narrow(0, 0, 50)));
  // Rows [100, 120) straddle the corrupted chunk 2.
  EXPECT_EQ(view->ReadRange(100, 20).status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Property 2: torn frames.
// ---------------------------------------------------------------------------

void PutU32Le(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 24) & 0xff));
}

std::vector<uint8_t> RawFrame(uint32_t magic, uint8_t type, uint32_t len,
                              const std::string& payload, uint32_t crc) {
  std::vector<uint8_t> out;
  PutU32Le(out, magic);
  out.push_back(type);
  PutU32Le(out, len);
  out.insert(out.end(), payload.begin(), payload.end());
  PutU32Le(out, crc);
  return out;
}

TEST(WireTest, TornFramesAreTypedDataLoss) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);

  // A well-formed frame round-trips.
  const std::string payload = "abcd";
  ASSERT_TRUE(SendFrame(fds[0], WireOp::kPing, payload.data(), payload.size()).ok());
  Result<WireFrame> good = RecvFrame(fds[1]);
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->op, WireOp::kPing);
  ASSERT_EQ(good->payload.size(), payload.size());
  EXPECT_EQ(std::memcmp(good->payload.data(), payload.data(), payload.size()), 0);

  // Same frame with a wrong CRC: torn.
  std::vector<uint8_t> bad_crc = RawFrame(
      kWireMagic, static_cast<uint8_t>(WireOp::kPing), 4, payload, 0xDEADBEEFu);
  ASSERT_EQ(::write(fds[0], bad_crc.data(), bad_crc.size()),
            static_cast<ssize_t>(bad_crc.size()));
  EXPECT_EQ(RecvFrame(fds[1]).status().code(), StatusCode::kDataLoss);

  // Bad magic.
  int more[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, more), 0);
  std::vector<uint8_t> bad_magic = RawFrame(
      0x12345678u, static_cast<uint8_t>(WireOp::kPing), 4, payload, 0u);
  ASSERT_EQ(::write(more[0], bad_magic.data(), bad_magic.size()),
            static_cast<ssize_t>(bad_magic.size()));
  EXPECT_EQ(RecvFrame(more[1]).status().code(), StatusCode::kDataLoss);

  // A length beyond the frame bound is rejected before any allocation that size.
  int oversized[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, oversized), 0);
  std::vector<uint8_t> too_big = RawFrame(
      kWireMagic, static_cast<uint8_t>(WireOp::kPing), kMaxFramePayload + 1, "", 0u);
  ASSERT_EQ(::write(oversized[0], too_big.data(), too_big.size()),
            static_cast<ssize_t>(too_big.size()));
  EXPECT_EQ(RecvFrame(oversized[1]).status().code(), StatusCode::kDataLoss);

  for (int fd : {fds[0], fds[1], more[0], more[1], oversized[0], oversized[1]}) {
    ::close(fd);
  }
}

// ---------------------------------------------------------------------------
// Remote-only properties: a live in-process daemon.
// ---------------------------------------------------------------------------

class StoreServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = *MakeTempDir("store_srv");
    StoreServerOptions options;
    options.root = dir_;
    options.listen = "unix:" + dir_ + ".sock";
    StartServer(std::move(options));
  }

  void StartServer(StoreServerOptions options) {
    Result<std::unique_ptr<StoreServer>> started = StoreServer::Start(std::move(options));
    ASSERT_TRUE(started.ok()) << started.status();
    server_ = std::move(*started);
  }

  void TearDown() override {
    ClearSocketFaults();
    if (server_ != nullptr) {
      server_->Shutdown();
    }
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  std::shared_ptr<RemoteStore> Connect() { return Connect(RemoteStoreOptions{}); }

  std::shared_ptr<RemoteStore> Connect(const RemoteStoreOptions& options) {
    Result<std::shared_ptr<RemoteStore>> store =
        RemoteStore::Connect(server_->endpoint(), options);
    UCP_CHECK(store.ok()) << store.status();
    return *store;
  }

  std::string dir_;
  std::unique_ptr<StoreServer> server_;
};

// A server that receives a torn frame closes the connection rather than resynchronize a
// stream whose framing is lost.
TEST_F(StoreServerTest, ServerClosesConnectionOnTornFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread serve([&] { server_->ServeConnectionForTest(fds[1]); });

  std::vector<uint8_t> hello;
  PutU32Le(hello, kWireVersion);
  PutU32Le(hello, kWireVersion);
  ASSERT_TRUE(SendFrame(fds[0], WireOp::kHello, hello).ok());
  Result<WireFrame> ok = RecvFrame(fds[0]);
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->op, WireOp::kHelloOk);

  const uint64_t crc_errors_before = CounterValue("store.server.frame_crc_errors");
  std::vector<uint8_t> torn = RawFrame(
      kWireMagic, static_cast<uint8_t>(WireOp::kPing), 4, "abcd", 0xDEADBEEFu);
  ASSERT_EQ(::write(fds[0], torn.data(), torn.size()), static_cast<ssize_t>(torn.size()));

  // The server sends one best-effort typed error frame, then hangs up: the read after it
  // sees EOF (kUnavailable), never a reply to the torn request.
  Result<WireFrame> err = RecvFrame(fds[0]);
  ASSERT_TRUE(err.ok()) << err.status();
  EXPECT_EQ(err->op, WireOp::kError);
  EXPECT_EQ(RecvFrame(fds[0]).status().code(), StatusCode::kUnavailable);
  serve.join();
  EXPECT_GT(CounterValue("store.server.frame_crc_errors"), crc_errors_before);
  ::close(fds[0]);
}

// A client whose supported version window misses the server's fails closed with a typed
// error frame instead of misparsing later exchanges.
TEST_F(StoreServerTest, VersionMismatchFailsClosed) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread serve([&] { server_->ServeConnectionForTest(fds[1]); });

  std::vector<uint8_t> hello;
  PutU32Le(hello, kWireVersion + 7);
  PutU32Le(hello, kWireVersion + 9);
  ASSERT_TRUE(SendFrame(fds[0], WireOp::kHello, hello).ok());
  Result<WireFrame> reply = RecvFrame(fds[0]);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->op, WireOp::kError);
  serve.join();
  ::close(fds[0]);
}

// Property 3: transient socket errors on either side of an exchange are retried, counted
// in io.retry.*, and invisible to the caller.
TEST_F(StoreServerTest, TransientSocketErrorsAreRetriedNotFatal) {
  std::shared_ptr<RemoteStore> store = Connect();
  const uint64_t retries_before = CounterValue("io.retry.retries");
  const uint64_t transient_before = CounterValue("io.retry.transient_errors");
  const uint64_t giveups_before = CounterValue("io.retry.giveups");

  const SocketFault::Op ops[] = {SocketFault::Op::kSend, SocketFault::Op::kRecv};
  const SocketFault::Kind kinds[] = {SocketFault::Kind::kEintr, SocketFault::Kind::kEagain,
                                     SocketFault::Kind::kShort};
  int injected = 0;
  for (SocketFault::Op op : ops) {
    for (SocketFault::Kind kind : kinds) {
      SocketFault fault;
      fault.op = op;
      fault.kind = kind;
      fault.nth = 0;
      ArmSocketFault(fault);
      Status ping = store->Ping();
      EXPECT_TRUE(ping.ok()) << ping.ToString();
      // A short transfer is partial progress, not an error: only the EINTR/EAGAIN arms
      // count toward io.retry.transient_errors.
      if (kind != SocketFault::Kind::kShort) {
        ++injected;
      }
    }
  }
  ClearSocketFaults();

  EXPECT_GE(CounterValue("io.retry.transient_errors") - transient_before,
            static_cast<uint64_t>(injected));
  EXPECT_GT(CounterValue("io.retry.retries"), retries_before);
  EXPECT_EQ(CounterValue("io.retry.giveups"), giveups_before);
}

// Property 4: the staged-bytes budget rejects a newcomer while held and admits it after
// the holder commits — backpressure, not deadlock.
TEST_F(StoreServerTest, AdmissionControlRejectsThenAdmits) {
  server_->Shutdown();
  StoreServerOptions options;
  options.root = dir_;
  options.listen = "unix:" + dir_ + ".sock";
  options.max_staged_bytes = 64 * 1024;
  StartServer(std::move(options));

  std::shared_ptr<RemoteStore> first = Connect();
  std::shared_ptr<RemoteStore> second = Connect();
  const std::string blob(60 * 1024, 'x');

  ASSERT_TRUE(first->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> w1 = first->OpenTagForWrite("global_step1");
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE((*w1)->WriteFile("shard", blob).ok());
  EXPECT_EQ(server_->staged_bytes(), blob.size());

  // The budget is held by the first session; the second is turned away (after its
  // bounded client-side retries) with kUnavailable.
  const uint64_t rejects_before = CounterValue("store.server.admission_rejects");
  ASSERT_TRUE(second->ResetTagStaging("global_step2").ok());
  Result<std::unique_ptr<StoreWriter>> w2 = second->OpenTagForWrite("global_step2");
  ASSERT_TRUE(w2.ok());
  EXPECT_EQ((*w2)->WriteFile("shard", blob).code(), StatusCode::kUnavailable);
  EXPECT_GT(CounterValue("store.server.admission_rejects"), rejects_before);

  // Commit releases the budget; the same write now goes through and commits.
  ASSERT_TRUE(first->CommitTag("global_step1", MetaJson(1)).ok());
  EXPECT_EQ(server_->staged_bytes(), 0u);
  ASSERT_TRUE((*w2)->WriteFile("shard", blob).ok());
  ASSERT_TRUE(second->CommitTag("global_step2", MetaJson(2)).ok());
  EXPECT_TRUE(IsTagComplete(dir_, "global_step2"));
}

// Property 4b: the declared WRITE_BEGIN size is untrusted input. A hostile u64 (here
// 2^63) must be rejected with a typed error before the server sizes any buffer from it —
// never an uncaught std::length_error that takes the daemon (and every other job's
// checkpoint service) down with it.
TEST_F(StoreServerTest, HostileWriteBeginTotalIsRejectedNotFatal) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread serve([&] { server_->ServeConnectionForTest(fds[1]); });

  std::vector<uint8_t> hello;
  PutU32Le(hello, kWireVersion);
  PutU32Le(hello, kWireVersion);
  ASSERT_TRUE(SendFrame(fds[0], WireOp::kHello, hello).ok());
  Result<WireFrame> ok = RecvFrame(fds[0]);
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->op, WireOp::kHelloOk);

  ByteWriter begin;
  begin.PutString("global_step1");
  begin.PutString("shard");
  begin.PutU64(uint64_t{1} << 63);
  ASSERT_TRUE(SendFrame(fds[0], WireOp::kWriteBegin, begin.buffer()).ok());
  Result<WireFrame> reply = RecvFrame(fds[0]);
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->op, WireOp::kError);
  ASSERT_FALSE(reply->payload.empty());
  EXPECT_EQ(reply->payload[0], static_cast<uint8_t>(StatusCode::kFailedPrecondition));
  EXPECT_EQ(server_->staged_bytes(), 0u);

  // The connection (and the daemon) survive: the next request on the same session works.
  ASSERT_TRUE(SendFrame(fds[0], WireOp::kPing, nullptr, 0).ok());
  Result<WireFrame> pong = RecvFrame(fds[0]);
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_EQ(pong->op, WireOp::kOk);

  ::close(fds[0]);
  serve.join();
}

// Property 4c: an honest file bigger than the whole staging budget fails typed and fast
// (kFailedPrecondition — "raise --max-staged-bytes"), not kUnavailable: the client must
// surface it instead of burning its retry budget on a request that can never be admitted.
TEST_F(StoreServerTest, WriteLargerThanBudgetFailsTypedWithoutRetry) {
  server_->Shutdown();
  StoreServerOptions options;
  options.root = dir_;
  options.listen = "unix:" + dir_ + ".sock";
  options.max_staged_bytes = 64 * 1024;
  StartServer(std::move(options));

  std::shared_ptr<RemoteStore> store = Connect();
  const uint64_t retries_before = CounterValue("io.retry.retries");
  ASSERT_TRUE(store->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->WriteFile("shard", std::string(80 * 1024, 'x')).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(CounterValue("io.retry.retries"), retries_before);
  EXPECT_EQ(server_->staged_bytes(), 0u);

  // Within-budget saves on the same connection still go through.
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string(16 * 1024, 'y')).ok());
  ASSERT_TRUE(store->CommitTag("global_step1", MetaJson(1)).ok());
  EXPECT_TRUE(IsTagComplete(dir_, "global_step1"));
}

// Property 4d: staged bytes are attributed per (session, tag). With two async saves
// multiplexed over one connection, save N+1's ResetTagStaging (or either commit) must
// release only its own tag's budget — never save N's still-staged bytes.
TEST_F(StoreServerTest, ResetReleasesOnlyThatTagsStagedBytes) {
  std::shared_ptr<RemoteStore> store = Connect();
  const std::string a(8 * 1024, 'a');
  const std::string b(16 * 1024, 'b');

  ASSERT_TRUE(store->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> w1 = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE((*w1)->WriteFile("shard", a).ok());
  EXPECT_EQ(server_->staged_bytes(), a.size());

  // Save 2 begins while save 1 is still staged: its reset must not free save 1's budget.
  ASSERT_TRUE(store->ResetTagStaging("global_step2").ok());
  EXPECT_EQ(server_->staged_bytes(), a.size());
  Result<std::unique_ptr<StoreWriter>> w2 = store->OpenTagForWrite("global_step2");
  ASSERT_TRUE(w2.ok());
  ASSERT_TRUE((*w2)->WriteFile("shard", b).ok());
  EXPECT_EQ(server_->staged_bytes(), a.size() + b.size());

  // Each commit releases exactly its own tag's bytes.
  ASSERT_TRUE(store->CommitTag("global_step2", MetaJson(2)).ok());
  EXPECT_EQ(server_->staged_bytes(), a.size());
  ASSERT_TRUE(store->CommitTag("global_step1", MetaJson(1)).ok());
  EXPECT_EQ(server_->staged_bytes(), 0u);
}

// A READ_RANGE whose offset+len wraps around u64 is the bounds check's kOutOfRange, not
// a short-read kDataLoss from the underlying pread.
TEST_F(StoreServerTest, ReadRangeOverflowingOffsetIsTypedOutOfRange) {
  std::shared_ptr<RemoteStore> store = Connect();
  ASSERT_TRUE(store->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string("0123456789")).ok());
  ASSERT_TRUE(store->CommitTag("global_step1", MetaJson(1)).ok());

  Result<std::unique_ptr<ByteSource>> source =
      store->OpenRead(JoinRel("global_step1", "shard"));
  ASSERT_TRUE(source.ok()) << source.status();
  uint8_t buf[16] = {0};
  EXPECT_EQ((*source)
                ->ReadAt(std::numeric_limits<uint64_t>::max() - 4, buf, sizeof(buf))
                .code(),
            StatusCode::kOutOfRange);
  // The handle is still good for in-range reads.
  ASSERT_TRUE((*source)->ReadAt(2, buf, 3).ok());
  EXPECT_EQ(std::memcmp(buf, "234", 3), 0);
}

// A long-lived daemon serving many short-lived connections (the multi-job
// reconnect-per-phase pattern) must join finished session threads as it goes, not hoard
// one zombie thread stack per past connection until shutdown.
TEST_F(StoreServerTest, FinishedConnectionThreadsAreReaped) {
  for (int i = 0; i < 8; ++i) {
    std::shared_ptr<RemoteStore> store = Connect();
    ASSERT_TRUE(store->Ping().ok());
  }
  for (int i = 0; i < 100 && server_->active_sessions() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Each new accept reaps previously finished threads, so the tracked handle count
  // converges to at most the one most-recent connection, not the connection history.
  size_t tracked = server_->session_thread_count();
  for (int i = 0; i < 100 && tracked > 1; ++i) {
    std::shared_ptr<RemoteStore> probe = Connect();
    ASSERT_TRUE(probe->Ping().ok());
    probe.reset();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    tracked = server_->session_thread_count();
  }
  EXPECT_LE(tracked, 1u);
}

// Property 6a: a client that vanishes mid-save leaves no visible tag, the server releases
// its admission budget, and the next client saves normally. The doomed client runs
// lease-less (ttl 0): these are the release-on-disconnect semantics every v1/v2 client
// and every no-lease v3 client gets. A *leased* client's staged state instead survives to
// lease expiry — that arm lives in chaos_test.cc.
TEST_F(StoreServerTest, ClientCrashMidSaveLeavesNoVisibleTag) {
  RemoteStoreOptions no_lease;
  no_lease.lease_ttl_ms = 0;
  std::shared_ptr<RemoteStore> doomed = Connect(no_lease);
  ASSERT_TRUE(doomed->ResetTagStaging("global_step3").ok());
  Result<std::unique_ptr<StoreWriter>> writer = doomed->OpenTagForWrite("global_step3");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string(128 * 1024, 'y')).ok());
  doomed->CloseForTest();  // the "client crashed before commit" arm

  // The server notices the hangup, drops the session, and releases its staged bytes.
  for (int i = 0; i < 100 && server_->staged_bytes() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server_->staged_bytes(), 0u);
  EXPECT_FALSE(IsTagComplete(dir_, "global_step3"));
  EXPECT_EQ(FindLatestValidTag(dir_).status().code(), StatusCode::kNotFound);

  std::shared_ptr<RemoteStore> next = Connect();
  ASSERT_TRUE(next->ResetTagStaging("global_step3").ok());
  Result<std::unique_ptr<StoreWriter>> retry = next->OpenTagForWrite("global_step3");
  ASSERT_TRUE(retry.ok());
  ASSERT_TRUE((*retry)->WriteFile("shard", std::string("fresh")).ok());
  ASSERT_TRUE(next->CommitTag("global_step3", MetaJson(3)).ok());
  EXPECT_TRUE(IsTagComplete(dir_, "global_step3"));
}

// Errno-mapping regressions: every connection-level errno the injector can raise must
// surface as a typed kUnavailable (the code the engine treats as skip-and-retry and the
// reconnect machinery treats as redialable) — never an untyped kIoError. Reconnect is off
// so the raw transport error reaches the caller instead of being healed.
class SocketErrnoTest : public StoreServerTest,
                        public ::testing::WithParamInterface<SocketFault::Kind> {};

TEST_P(SocketErrnoTest, SendSideErrnoIsTypedUnavailable) {
  RemoteStoreOptions options;
  options.reconnect = false;
  std::shared_ptr<RemoteStore> store = Connect(options);
  ArmSocketFault({SocketFault::Op::kSend, GetParam(), 0});
  EXPECT_EQ(store->Ping().code(), StatusCode::kUnavailable);
  ClearSocketFaults();
}

TEST_P(SocketErrnoTest, RecvSideErrnoIsTypedUnavailable) {
  RemoteStoreOptions options;
  options.reconnect = false;
  std::shared_ptr<RemoteStore> store = Connect(options);
  ArmSocketFault({SocketFault::Op::kRecv, GetParam(), 0});
  EXPECT_EQ(store->Ping().code(), StatusCode::kUnavailable);
  ClearSocketFaults();
}

INSTANTIATE_TEST_SUITE_P(DropErrnos, SocketErrnoTest,
                         ::testing::Values(SocketFault::Kind::kEpipe,
                                           SocketFault::Kind::kEconnreset,
                                           SocketFault::Kind::kEtimedout),
                         [](const ::testing::TestParamInfo<SocketFault::Kind>& info) {
                           switch (info.param) {
                             case SocketFault::Kind::kEpipe: return std::string("epipe");
                             case SocketFault::Kind::kEconnreset:
                               return std::string("econnreset");
                             default: return std::string("etimedout");
                           }
                         });

// The mapping itself, pinned per errno (the injection tests above can observe the drop as
// a peer EOF instead of the raw errno when the in-process server consumes the fault).
TEST(WireErrnoTest, ConnectionErrnosMapToUnavailable) {
  for (int err : {EPIPE, ECONNRESET, ETIMEDOUT, ECONNREFUSED, ECONNABORTED, ENOTCONN}) {
    EXPECT_EQ(StatusFromSocketErrno("socket recv", err).code(), StatusCode::kUnavailable)
        << err;
  }
  for (int err : {EIO, EBADF, EINVAL}) {
    EXPECT_EQ(StatusFromSocketErrno("socket send", err).code(), StatusCode::kIoError) << err;
  }
}

// Property 6b (the acceptance gate): killing the daemon mid-save never leaves a tag that
// fsck or ResumeElastic accepts; resume lands on the last committed save.
TEST_F(StoreServerTest, DaemonKillMidSaveNeverLeavesAcceptedTag) {
  // A real save through the daemon first: the sync save path over RemoteStore.
  TrainerConfig config;
  config.model = TinyGpt();
  config.strategy = ParallelConfig{1, 1, 1, 1, 0, 1};
  config.global_batch = 8;
  {
    std::shared_ptr<RemoteStore> store = Connect();
    TrainingRun run(config);
    run.Train(1, 2);
    run.Run([&](RankTrainer& trainer) {
      Status saved = SaveDistributedCheckpoint(*store, trainer, 2);
      UCP_CHECK(saved.ok()) << saved.ToString();
    });
  }
  ASSERT_TRUE(IsTagComplete(dir_, "global_step2"));

  // Stage the next save and kill the daemon (no drain) before it commits. A short
  // reconnect deadline keeps the commit's (correct) redial attempts against the
  // permanently-dead daemon from stalling the test.
  RemoteStoreOptions short_deadline;
  short_deadline.reconnect_deadline = std::chrono::milliseconds(200);
  std::shared_ptr<RemoteStore> store = Connect(short_deadline);
  ASSERT_TRUE(store->ResetTagStaging("global_step3").ok());
  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step3");
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string(64 * 1024, 'z')).ok());
  server_->Shutdown(/*drain=*/false);
  EXPECT_FALSE(store->CommitTag("global_step3", MetaJson(3)).ok());

  // The interrupted tag is invisible to every acceptance path.
  EXPECT_FALSE(IsTagComplete(dir_, "global_step3"));
  Result<std::string> valid = FindLatestValidTag(dir_);
  ASSERT_TRUE(valid.ok()) << valid.status();
  EXPECT_EQ(*valid, "global_step2");
  Result<FsckReport> fsck = Fsck(dir_, /*quarantine=*/false);
  ASSERT_TRUE(fsck.ok()) << fsck.status();

  TrainingRun resumed(config);
  resumed.Run([&](RankTrainer& trainer) {
    Result<ResumeReport> report = ResumeElastic(dir_, trainer);
    UCP_CHECK(report.ok()) << report.status();
    UCP_CHECK(report->tag == "global_step2") << report->tag;
    UCP_CHECK(report->iteration == 2) << report->iteration;
  });
}

// ---------------------------------------------------------------------------
// Wire v4 observability: distributed trace-context propagation, per-RPC
// latency/bytes histograms, METRICS_DUMP, and the HTTP exposition.
// ---------------------------------------------------------------------------

uint64_t HistogramCount(const std::string& name) {
  for (const obs::MetricValue& m : obs::SnapshotMetrics()) {
    if (m.name == name) {
      return m.count;
    }
  }
  return 0;
}

// One-shot HTTP GET against the daemon's --http listener (HttpLoop answers a single
// request per connection and closes).
std::string HttpGet(const std::string& endpoint, const std::string& target) {
  Result<Endpoint> ep = ParseEndpoint(endpoint);
  if (!ep.ok()) {
    return std::string();
  }
  Result<int> fd = DialEndpoint(*ep);
  if (!fd.ok()) {
    return std::string();
  }
  const std::string request = "GET " + target + " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(*fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(*fd);
      return std::string();
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(*fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(*fd);
  return response;
}

#if UCP_OBS_ENABLED

// A string arg ("trace_id", "op", "tag", ...) from an exported trace event.
std::string TraceArg(const Json& event, const char* key) {
  if (!event.Has("args")) {
    return std::string();
  }
  Result<std::string> v = event.AsObject().at("args").GetString(key);
  return v.ok() ? *v : std::string();
}

// The tentpole property: a v4 client ships (trace_id, span_id) ahead of each traced
// request, and the daemon's handling span parents under the client RPC span and is
// attributed to (session, lease, tag).
TEST_F(StoreServerTest, TraceContextParentsServerSpansUnderClientRpc) {
  obs::SetTraceEnabled(true);
  obs::ResetTrace();
  std::shared_ptr<RemoteStore> store = Connect();
  ASSERT_GE(store->negotiated_version(), 4u);
  ASSERT_TRUE(store->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string(128 * 1024, 'q')).ok());
  ASSERT_TRUE(store->CommitTag("global_step1", MetaJson(1)).ok());

  Result<Json> parsed = Json::Parse(obs::ExportChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<const JsonArray*> events = parsed->GetArray("traceEvents");
  ASSERT_TRUE(events.ok());

  // Client RPC spans, keyed by their span id.
  std::map<std::string, std::string> client_rpc;  // span_id -> trace_id
  for (const Json& e : **events) {
    Result<std::string> name = e.GetString("name");
    if (name.ok() && *name == "store.client.rpc" && !TraceArg(e, "span_id").empty()) {
      client_rpc[TraceArg(e, "span_id")] = TraceArg(e, "trace_id");
    }
  }
  ASSERT_FALSE(client_rpc.empty());

  bool checked_write_begin = false;
  for (const Json& e : **events) {
    Result<std::string> name = e.GetString("name");
    if (!name.ok() || *name != "store.server.rpc" || TraceArg(e, "op") != "write_begin") {
      continue;
    }
    checked_write_begin = true;
    // Attributed to the session, its lease, and the tag being written.
    const Json& args = e.AsObject().at("args");
    EXPECT_TRUE(args.GetInt("session").ok());
    EXPECT_TRUE(args.GetInt("lease").ok());
    EXPECT_EQ(TraceArg(e, "tag"), "global_step1");
    // Parented under a client RPC span of the same trace.
    const std::string parent = TraceArg(e, "parent_span_id");
    ASSERT_TRUE(client_rpc.count(parent))
        << "server write_begin span is not parented under any client RPC span";
    EXPECT_EQ(client_rpc[parent], TraceArg(e, "trace_id"));
  }
  EXPECT_TRUE(checked_write_begin);
}

// Reconnect attribution: a save interrupted by a connection drop resumes under the SAME
// trace_id — the reconnect span, the WRITE_RESUME continuation, and every server-side
// write span belong to one logical operation, not two roots.
TEST_F(StoreServerTest, TraceContextSurvivesConnDropAndWriteResume) {
  obs::SetTraceEnabled(true);
  obs::ResetTrace();
  std::shared_ptr<RemoteStore> store = Connect();
  ASSERT_FALSE(store->lease_token().empty());

  std::vector<uint8_t> body(6u * 1024 * 1024 + 13);
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>((i * 131) & 0xff);
  }
  ASSERT_TRUE(store->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(writer.ok()) << writer.status();
  // Drop the connection mid-chunk-stream (sends since arming: BEGIN=1, its OK=2, chunks
  // from 3), forcing reconnect + WRITE_RESUME inside one WriteFile call.
  ArmSocketFault({SocketFault::Op::kSend, SocketFault::Kind::kEconnreset, 5, 0});
  Status wrote = (*writer)->WriteFile("shard", body.data(), body.size());
  ClearSocketFaults();
  ASSERT_TRUE(wrote.ok()) << wrote.ToString();
  ASSERT_TRUE(store->CommitTag("global_step1", MetaJson(1)).ok());

  Result<Json> parsed = Json::Parse(obs::ExportChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<const JsonArray*> events = parsed->GetArray("traceEvents");
  ASSERT_TRUE(events.ok());

  std::string save_trace;  // the logical operation's trace id
  std::string reconnect_trace;
  std::string resume_trace;
  bool saw_resume_instant = false;
  bool saw_resume_server_span = false;
  std::set<std::string> server_write_traces;
  for (const Json& e : **events) {
    Result<std::string> name = e.GetString("name");
    if (!name.ok()) {
      continue;
    }
    if (*name == "store.client.write_file") {
      save_trace = TraceArg(e, "trace_id");
    } else if (*name == "store.client.reconnect") {
      reconnect_trace = TraceArg(e, "trace_id");
    } else if (*name == "store.client.write_resume") {
      saw_resume_instant = true;
    } else if (*name == "store.server.rpc") {
      const std::string op = TraceArg(e, "op");
      if (op == "write_resume") {
        saw_resume_server_span = true;
        resume_trace = TraceArg(e, "trace_id");
      }
      if (op == "write_begin" || op == "write_chunk" || op == "write_end" ||
          op == "write_resume") {
        // Mid-stream chunk frames carry no per-frame header (only the frame after a
        // TRACE_CONTEXT is annotated), so their spans are context-free — skip those.
        if (!TraceArg(e, "trace_id").empty()) {
          server_write_traces.insert(TraceArg(e, "trace_id"));
        }
      }
    }
  }
  ASSERT_FALSE(save_trace.empty());
  EXPECT_EQ(reconnect_trace, save_trace)
      << "reconnect span opened a new trace root instead of joining the save's";
  EXPECT_TRUE(saw_resume_instant);
  // The post-drop continuation is the SAME logical operation: the server's WRITE_RESUME
  // span — and every other context-carrying write span, before the drop and after the
  // resume — belongs to the save's one trace, not a second root.
  ASSERT_TRUE(saw_resume_server_span);
  EXPECT_EQ(resume_trace, save_trace);
  EXPECT_EQ(server_write_traces.size(), 1u);
  EXPECT_TRUE(server_write_traces.count(save_trace));
}

// Downgrade: a v4 client on a v3-capped daemon negotiates v3, never emits the
// TRACE_CONTEXT header (the ops succeed — an unexpected header would be a typed error on
// a v3 session), and METRICS_DUMP fails typed as unimplemented.
TEST_F(StoreServerTest, V4ClientAgainstV3ServerDropsTraceHeaderCleanly) {
  server_->Shutdown();
  StoreServerOptions options;
  options.root = dir_;
  options.listen = "unix:" + dir_ + ".sock";
  options.max_wire_version = 3;
  StartServer(std::move(options));

  obs::SetTraceEnabled(true);
  obs::ResetTrace();
  std::shared_ptr<RemoteStore> store = Connect();
  ASSERT_EQ(store->negotiated_version(), 3u);
  ASSERT_TRUE(store->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string(64 * 1024, 'v')).ok());
  ASSERT_TRUE(store->CommitTag("global_step1", MetaJson(1)).ok());
  EXPECT_EQ(store->MetricsDump(/*prometheus=*/true).status().code(),
            StatusCode::kUnimplemented);

  // The server still records handling spans, but with no propagated context: the client
  // traced locally and dropped the header at the negotiated version.
  Result<Json> parsed = Json::Parse(obs::ExportChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  bool saw_server_write = false;
  for (const Json& e : **parsed->GetArray("traceEvents")) {
    Result<std::string> name = e.GetString("name");
    if (name.ok() && *name == "store.server.rpc" &&
        TraceArg(e, "op") == "write_begin") {
      saw_server_write = true;
      EXPECT_TRUE(TraceArg(e, "trace_id").empty())
          << "v3 session must never receive a trace context";
    }
  }
  EXPECT_TRUE(saw_server_write);
}

#endif  // UCP_OBS_ENABLED

// METRICS_DUMP over the wire: both formats, with the per-RPC server histograms non-zero
// after a save — and the client-side RPC latency histograms populated too.
TEST_F(StoreServerTest, MetricsDumpServesTextAndPrometheusWithRpcHistograms) {
  std::shared_ptr<RemoteStore> store = Connect();
  ASSERT_TRUE(store->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string(64 * 1024, 'm')).ok());
  ASSERT_TRUE(store->CommitTag("global_step1", MetaJson(1)).ok());

  Result<std::string> text = store->MetricsDump(/*prometheus=*/false);
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_NE(text->find("store.server.rpc.write_begin.seconds"), std::string::npos);

  Result<std::string> prom = store->MetricsDump(/*prometheus=*/true);
  ASSERT_TRUE(prom.ok()) << prom.status();
  EXPECT_NE(prom->find("# TYPE"), std::string::npos);
  const std::string needle = "store_server_rpc_write_begin_seconds_count ";
  const size_t at = prom->find(needle);
  ASSERT_NE(at, std::string::npos) << *prom;
  EXPECT_GT(std::strtoull(prom->c_str() + at + needle.size(), nullptr, 10), 0u);

  // Satellite of the same change: the client records its own RPC latency per op.
  EXPECT_GT(HistogramCount("store.client.rpc.write_begin.seconds"), 0u);
  EXPECT_GT(HistogramCount("store.client.rpc.commit_tag.seconds"), 0u);
}

// The HTTP listener: /healthz is structured JSON (drain state, lease/session counts,
// staged bytes, journal seq, wire version), /metrics speaks both plaintext and
// Prometheus exposition via ?format=.
TEST_F(StoreServerTest, HttpServesHealthzJsonAndPrometheusExposition) {
  server_->Shutdown();
  StoreServerOptions options;
  options.root = dir_;
  options.listen = "unix:" + dir_ + ".sock";
  options.http_listen = "tcp:127.0.0.1:0";
  StartServer(std::move(options));
  ASSERT_FALSE(server_->http_endpoint().empty());

  std::shared_ptr<RemoteStore> store = Connect();
  ASSERT_TRUE(store->ResetTagStaging("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->WriteFile("shard", std::string(32 * 1024, 'h')).ok());
  ASSERT_TRUE(store->CommitTag("global_step1", MetaJson(1)).ok());

  const std::string healthz = HttpGet(server_->http_endpoint(), "/healthz");
  ASSERT_NE(healthz.find("200"), std::string::npos) << healthz;
  const size_t body_at = healthz.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  Result<Json> health = Json::Parse(healthz.substr(body_at + 4));
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(*health->GetString("status"), "ok");
  EXPECT_EQ(*health->GetBool("draining"), false);
  EXPECT_TRUE(health->GetInt("sessions").ok());
  EXPECT_TRUE(health->GetInt("leases").ok());
  EXPECT_TRUE(health->GetInt("staged_bytes").ok());
  EXPECT_TRUE(health->GetInt("journal_seq").ok());
  EXPECT_EQ(*health->GetInt("wire_version"), static_cast<int64_t>(kWireVersion));

  const std::string prom =
      HttpGet(server_->http_endpoint(), "/metrics?format=prometheus");
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  EXPECT_NE(prom.find("store_server_rpc_write_begin_seconds_bucket{le="),
            std::string::npos);
  EXPECT_NE(prom.find("store_server_rpc_write_begin_seconds_count"), std::string::npos);

  const std::string plain = HttpGet(server_->http_endpoint(), "/metrics");
  EXPECT_NE(plain.find("store.server.rpc.write_begin.seconds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Property 7: the sliced loader is bit-exact over the wire.
// ---------------------------------------------------------------------------

TEST_F(StoreServerTest, SlicedLoadOverRemoteBitExactWithLocalAcrossSweep) {
  ModelConfig model = TinyGpt();
  TrainerConfig source_config;
  source_config.model = model;
  source_config.strategy = ParallelConfig{1, 1, 2, 1, 1, 1};
  source_config.global_batch = 8;
  TrainingRun source(source_config);
  source.Train(1, 3);
  source.Run([&](RankTrainer& trainer) {
    Status saved = SaveDistributedCheckpoint(dir_, trainer, 3);
    UCP_CHECK(saved.ok()) << saved.ToString();
  });
  Result<ConvertStats> converted =
      ConvertToUcp(dir_, "global_step3", PathJoin(dir_, "ucp"), {.num_threads = 2});
  ASSERT_TRUE(converted.ok()) << converted.status();

  std::shared_ptr<RemoteStore> remote = Connect();
  for (int tp : {1, 2, 4}) {
    for (int pp : {1, 2}) {
      for (int dp : {1, 2}) {
        ParallelConfig target{tp, pp, dp, 1, 1, 1};
        SCOPED_TRACE(target.ToString());
        TrainerConfig config;
        config.model = model;
        config.strategy = target;
        config.global_batch = 8;

        UcpLoadOptions load_options;
        load_options.num_threads = 2;
        load_options.sliced = true;

        TrainingRun local_run(config);
        local_run.Run([&](RankTrainer& trainer) {
          Status loaded = LoadUcpCheckpoint(PathJoin(dir_, "ucp"), trainer, load_options);
          UCP_CHECK(loaded.ok()) << loaded.ToString();
        });
        TrainingRun remote_run(config);
        remote_run.Run([&](RankTrainer& trainer) {
          Status loaded = LoadUcpCheckpoint(*remote, "ucp", trainer, load_options);
          UCP_CHECK(loaded.ok()) << loaded.ToString();
        });

        for (int r = 0; r < local_run.world_size(); ++r) {
          const ZeroOptimizer& a = remote_run.trainer(r).optimizer();
          const ZeroOptimizer& b = local_run.trainer(r).optimizer();
          EXPECT_TRUE(Tensor::BitEqual(a.MasterState(), b.MasterState())) << "rank " << r;
          EXPECT_TRUE(Tensor::BitEqual(a.ExpAvgState(), b.ExpAvgState())) << "rank " << r;
          EXPECT_TRUE(Tensor::BitEqual(a.ExpAvgSqState(), b.ExpAvgSqState()))
              << "rank " << r;
          EXPECT_EQ(a.steps_taken(), b.steps_taken()) << "rank " << r;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ucp
