// The sliced load path (v3 range reads), as properties:
//
//  1. Bit-exact equivalence: the partition-pruned parallel loader produces exactly the
//     optimizer state of the whole-file reference arm, across a {TP}x{PP}x{DP}x{ZeRO}
//     target grid.
//  2. Chunked CRCs localize damage: bit-rot inside one 64 KiB chunk fails only the ranges
//     that touch it; untouched ranges still load, and header-only Stat still succeeds.
//  3. Backward compatibility: v1/v2 files round-trip through the view API, and a UCP
//     checkpoint rewritten at v2 still loads bit-exactly through the sliced path.
//  4. The sliced arm reads strictly fewer bytes than the reference arm.
//  5. The slice cache dedups concurrent identical reads and drops failed loads.

#include <gtest/gtest.h>

#include <cstring>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"
#include "src/ucp/slice_cache.h"

namespace ucp {
namespace {

TrainerConfig ConfigFor(const ModelConfig& model, const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = model;
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  cfg.lr.warmup_iters = 2;
  cfg.lr.decay_iters = 30;
  return cfg;
}

class LoadEnv : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_load"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::string Sub(const std::string& name) { return PathJoin(dir_, name); }

  // Trains a small source run and converts its checkpoint to UCP at Sub("ucp").
  void MakeUcp(const ModelConfig& model) {
    TrainingRun source(ConfigFor(model, {1, 1, 2, 1, 1, 1}));
    source.Train(1, 3);
    source.Run([&](RankTrainer& t) {
      Status s = SaveDistributedCheckpoint(Sub("src"), t, 3);
      UCP_CHECK(s.ok()) << s.ToString();
    });
    Result<ConvertStats> stats =
        ConvertToUcp(Sub("src"), "global_step3", Sub("ucp"), {.num_threads = 2});
    ASSERT_TRUE(stats.ok()) << stats.status();
  }

  static void LoadAll(TrainingRun& run, const std::string& ucp_dir,
                      const UcpLoadOptions& options) {
    run.Run([&](RankTrainer& t) {
      Status s = LoadUcpCheckpoint(ucp_dir, t, options);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }

  std::string dir_;
};

// Property 1: the sliced parallel loader and the whole-file reference arm install
// bit-identical optimizer state on every rank, across the target grid.
TEST_F(LoadEnv, SlicedMatchesWholeFileAcrossTargetGrid) {
  ModelConfig model = TinyGpt();
  MakeUcp(model);

  for (int tp : {1, 2, 4}) {
    for (int pp : {1, 2}) {
      for (int dp : {1, 2}) {
        for (int zero : {0, 1}) {
          ParallelConfig target{tp, pp, dp, 1, zero, 1};
          SCOPED_TRACE(target.ToString());

          TrainingRun sliced(ConfigFor(model, target));
          LoadAll(sliced, Sub("ucp"),
                  {.num_threads = 4, .sliced = true, .use_slice_cache = true});
          TrainingRun whole(ConfigFor(model, target));
          LoadAll(whole, Sub("ucp"), {.sliced = false});

          for (int r = 0; r < sliced.world_size(); ++r) {
            const ZeroOptimizer& a = sliced.trainer(r).optimizer();
            const ZeroOptimizer& b = whole.trainer(r).optimizer();
            EXPECT_TRUE(Tensor::BitEqual(a.MasterState(), b.MasterState())) << "rank " << r;
            EXPECT_TRUE(Tensor::BitEqual(a.ExpAvgState(), b.ExpAvgState())) << "rank " << r;
            EXPECT_TRUE(Tensor::BitEqual(a.ExpAvgSqState(), b.ExpAvgSqState()))
                << "rank " << r;
            EXPECT_EQ(a.steps_taken(), b.steps_taken()) << "rank " << r;
          }
        }
      }
    }
  }
}

// The sliced loader also runs correctly with zero worker threads (inline) and without the
// cache — the knobs are independent of correctness.
TEST_F(LoadEnv, SlicedInlineNoCacheStillExact) {
  ModelConfig model = TinyGpt();
  MakeUcp(model);
  ParallelConfig target{2, 1, 2, 1, 1, 1};

  TrainingRun inline_run(ConfigFor(model, target));
  LoadAll(inline_run, Sub("ucp"),
          {.num_threads = 0, .sliced = true, .use_slice_cache = false});
  TrainingRun whole(ConfigFor(model, target));
  LoadAll(whole, Sub("ucp"), {.sliced = false});
  for (int r = 0; r < inline_run.world_size(); ++r) {
    EXPECT_TRUE(Tensor::BitEqual(inline_run.trainer(r).optimizer().MasterState(),
                                 whole.trainer(r).optimizer().MasterState()));
  }
}

// Property 2: damage inside one CRC chunk is invisible to ranges that avoid the chunk and
// fatal to ranges that touch it. Header-only Stat keeps working (the header has its own CRC).
TEST_F(LoadEnv, ChunkCrcLocalizesBitRot) {
  // 256x320 fp32 = 327680 payload bytes = 5 chunks of 64 KiB.
  Tensor t = Tensor::Zeros({256, 320});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(i % 977) * 0.5f;
  }
  const std::string path = Sub("chunked");
  ASSERT_TRUE(SaveTensor(path, t).ok());

  Result<TensorFileInfo> info = StatTensor(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->format_version, 3u);
  EXPECT_EQ(info->chunk_bytes, 64u * 1024);
  EXPECT_EQ(info->num_chunks, 5u);

  // Flip one byte in chunk 2. The payload starts at header_bytes, recorded at offset 12.
  std::string raw = *ReadFileToString(path);
  uint64_t header_bytes = 0;
  std::memcpy(&header_bytes, raw.data() + 12, sizeof(header_bytes));
  raw[header_bytes + 2 * 65536 + 123] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, raw).ok());

  // The header is untouched, so planning APIs still work.
  EXPECT_TRUE(StatTensor(path).ok());
  // Whole-file readers and the deep verifier must notice.
  EXPECT_EQ(LoadTensor(path).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(DeepVerifyTensorFile(path).code(), StatusCode::kDataLoss);

  Result<TensorFileView> view = TensorFileView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status();
  // Rows [0, 50) live in bytes [0, 64000): chunk 0 only — loads clean and bit-exact.
  Result<Tensor> head = view->ReadRange(0, 50);
  ASSERT_TRUE(head.ok()) << head.status();
  EXPECT_TRUE(Tensor::BitEqual(*head, t.Narrow(0, 0, 50)));
  // Rows [160, 256) live in chunks 3-4 — also untouched.
  Result<Tensor> tail = view->ReadRange(160, 96);
  ASSERT_TRUE(tail.ok()) << tail.status();
  EXPECT_TRUE(Tensor::BitEqual(*tail, t.Narrow(0, 160, 96)));
  // Rows [100, 120) straddle the corrupted chunk 2 — caught by its CRC.
  Status bad = view->ReadRange(100, 20).status();
  EXPECT_EQ(bad.code(), StatusCode::kDataLoss);
  EXPECT_NE(bad.ToString().find("per-tensor CRC"), std::string::npos) << bad.ToString();
}

// Chunk verification is memoized per view: re-reading a verified range does not re-verify
// (or re-read) its chunks; an unverified chunk is fetched whole exactly once.
TEST_F(LoadEnv, ChunkVerificationIsMemoizedPerView) {
  Tensor t = Tensor::Zeros({256, 320});
  const std::string path = Sub("memo");
  ASSERT_TRUE(SaveTensor(path, t).ok());

  Result<TensorFileView> view = TensorFileView::Open(path);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(view->ReadRange(0, 50).ok());
  TensorIoStats first = GetTensorIoStats();
  ASSERT_TRUE(view->ReadRange(0, 50).ok());
  TensorIoStats second = GetTensorIoStats();
  EXPECT_EQ(second.chunks_verified, first.chunks_verified);
  // The re-read still fetches payload bytes, but only the 64000 requested — not the chunk.
  EXPECT_EQ(second.bytes_read - first.bytes_read, 50u * 320 * 4);
}

// Property 3a: the legacy writers round-trip through every reader entry point.
TEST_F(LoadEnv, LegacyVersionsRoundTripThroughViews) {
  Tensor t = Tensor::Zeros({7, 9});
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = 1.0f / static_cast<float>(i + 1);
  }
  for (uint32_t version : {1u, 2u}) {
    SCOPED_TRACE(version);
    const std::string path = Sub("v" + std::to_string(version));
    ASSERT_TRUE(SaveTensorAtVersion(path, t, DType::kF32, version).ok());

    Result<TensorFileInfo> info = StatTensor(path);
    ASSERT_TRUE(info.ok()) << info.status();
    EXPECT_EQ(info->format_version, version);
    EXPECT_EQ(info->num_chunks, 0u);  // no chunk table before v3
    EXPECT_EQ(info->shape, t.shape());

    Result<Tensor> whole = LoadTensor(path);
    ASSERT_TRUE(whole.ok());
    EXPECT_TRUE(Tensor::BitEqual(*whole, t));

    Result<TensorFileView> view = TensorFileView::Open(path);
    ASSERT_TRUE(view.ok()) << view.status();
    Result<Tensor> range = view->ReadRange(2, 3);
    ASSERT_TRUE(range.ok()) << range.status();
    EXPECT_TRUE(Tensor::BitEqual(*range, t.Narrow(0, 2, 3)));
  }
}

// Property 3b: a UCP checkpoint whose atoms were written by an old (v2) build still loads
// through the sliced path, bit-exactly.
TEST_F(LoadEnv, V2AtomsLoadBitExactThroughSlicedPath) {
  ModelConfig model = TinyGpt();
  MakeUcp(model);

  // Downgrade every atom state file to v2 in place.
  Result<UcpMeta> meta = ReadUcpMeta(Sub("ucp"));
  ASSERT_TRUE(meta.ok());
  for (const std::string& name : meta->atom_names) {
    for (const char* state : {"fp32", "exp_avg", "exp_avg_sq"}) {
      const std::string path = PathJoin(AtomDir(Sub("ucp"), name), state);
      Result<Tensor> t = LoadTensor(path);
      ASSERT_TRUE(t.ok()) << path;
      ASSERT_TRUE(SaveTensorAtVersion(path, *t, DType::kF32, 2).ok());
    }
  }
  ASSERT_EQ(StatTensor(PathJoin(AtomDir(Sub("ucp"), meta->atom_names[0]), "fp32"))
                ->format_version,
            2u);

  ParallelConfig target{2, 2, 2, 1, 1, 1};
  TrainingRun sliced(ConfigFor(model, target));
  LoadAll(sliced, Sub("ucp"), {.num_threads = 4, .sliced = true});
  TrainingRun whole(ConfigFor(model, target));
  LoadAll(whole, Sub("ucp"), {.sliced = false});
  for (int r = 0; r < sliced.world_size(); ++r) {
    const ZeroOptimizer& a = sliced.trainer(r).optimizer();
    const ZeroOptimizer& b = whole.trainer(r).optimizer();
    EXPECT_TRUE(Tensor::BitEqual(a.MasterState(), b.MasterState())) << "rank " << r;
    EXPECT_TRUE(Tensor::BitEqual(a.ExpAvgState(), b.ExpAvgState())) << "rank " << r;
    EXPECT_TRUE(Tensor::BitEqual(a.ExpAvgSqState(), b.ExpAvgSqState())) << "rank " << r;
  }
}

// Property 4: on a TP2·DP2 target the sliced arm moves at most half the bytes the
// whole-file arm does (partition pruning alone guarantees this; dedup only helps).
TEST_F(LoadEnv, SlicedArmReadsFewerBytes) {
  ModelConfig model = TinyGpt();
  MakeUcp(model);
  ParallelConfig target{2, 1, 2, 1, 1, 1};

  TrainingRun whole(ConfigFor(model, target));
  ResetTensorIoStats();
  LoadAll(whole, Sub("ucp"), {.sliced = false});
  const uint64_t whole_bytes = GetTensorIoStats().bytes_read;

  TrainingRun sliced(ConfigFor(model, target));
  ResetTensorIoStats();
  LoadAll(sliced, Sub("ucp"), {.num_threads = 4, .sliced = true});
  const uint64_t sliced_bytes = GetTensorIoStats().bytes_read;

  EXPECT_GT(whole_bytes, 0u);
  EXPECT_LE(sliced_bytes * 2, whole_bytes)
      << "sliced " << sliced_bytes << " vs whole " << whole_bytes;
}

// Property 5a: concurrent identical keys run the loader once; later callers share the slice
// while someone still holds it.
TEST_F(LoadEnv, SliceCacheDedupsWhileHeld) {
  AtomSliceCache& cache = AtomSliceCache::Global();
  cache.ResetStats();
  int loads = 0;
  auto loader = [&]() -> Result<Tensor> {
    ++loads;
    return Tensor::Zeros({4});
  };
  Result<std::shared_ptr<const Tensor>> first = cache.GetOrLoad("load_test:a", loader);
  ASSERT_TRUE(first.ok());
  Result<std::shared_ptr<const Tensor>> second = cache.GetOrLoad("load_test:a", loader);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Once every holder releases the slice, the entry dies and the next get reloads.
  first->reset();
  (*second).reset();
  Result<std::shared_ptr<const Tensor>> third = cache.GetOrLoad("load_test:a", loader);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(loads, 2);
}

// Property 5b: a failed load is reported but not cached — the next attempt retries.
TEST_F(LoadEnv, SliceCacheDoesNotCacheFailures) {
  AtomSliceCache& cache = AtomSliceCache::Global();
  int attempts = 0;
  auto flaky = [&]() -> Result<Tensor> {
    if (++attempts == 1) {
      return DataLossError("injected");
    }
    return Tensor::Zeros({2});
  };
  EXPECT_EQ(cache.GetOrLoad("load_test:flaky", flaky).status().code(),
            StatusCode::kDataLoss);
  Result<std::shared_ptr<const Tensor>> retried = cache.GetOrLoad("load_test:flaky", flaky);
  EXPECT_TRUE(retried.ok());
  EXPECT_EQ(attempts, 2);
}

}  // namespace
}  // namespace ucp
