#include <gtest/gtest.h>

#include <cmath>

#include "src/common/fs.h"
#include "src/tensor/bf16.h"
#include "src/tensor/matmul.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_file.h"

namespace ucp {
namespace {

Tensor Iota(Shape shape) {
  Tensor t = Tensor::Zeros(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(i);
  }
  return t;
}

// ---------------- Core tensor ----------------

TEST(TensorTest, ZerosAndShape) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.ndim(), 3);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.SumAll(), 0.0);
}

TEST(TensorTest, CloneIsDeep) {
  Tensor a = Iota({4});
  Tensor b = a.Clone();
  b.at(0) = 99.0f;
  EXPECT_EQ(a.at(0), 0.0f);
  EXPECT_FALSE(a.SharesStorageWith(b));
}

TEST(TensorTest, ReshapeShares) {
  Tensor a = Iota({2, 6});
  Tensor b = a.Reshape({3, 4});
  b.at(0) = 42.0f;
  EXPECT_EQ(a.at(0), 42.0f);
  EXPECT_TRUE(a.SharesStorageWith(b));
}

TEST(TensorTest, ViewOfWindowsIntoStorage) {
  Tensor flat = Iota({10});
  Tensor view = Tensor::ViewOf(flat, 4, {2, 3});
  EXPECT_EQ(view.at(0), 4.0f);
  view.at(0) = -1.0f;
  EXPECT_EQ(flat.at(4), -1.0f);
}

TEST(TensorTest, NarrowMiddleDim) {
  Tensor t = Iota({2, 4, 3});
  Tensor n = t.Narrow(1, 1, 2);
  EXPECT_EQ(n.shape(), (Shape{2, 2, 3}));
  // Element [0][0][0] of the narrow = original [0][1][0] = 3.
  EXPECT_EQ(n.at(0), 3.0f);
  // Element [1][1][2] of the narrow = original [1][2][2] = 12+6+2.
  EXPECT_EQ(n.at(1 * 6 + 1 * 3 + 2), static_cast<float>(1 * 12 + 2 * 3 + 2));
}

TEST(TensorTest, ConcatInverseOfSplit) {
  Tensor t = Iota({4, 6});
  for (int dim = 0; dim < 2; ++dim) {
    std::vector<Tensor> parts = t.Split(dim, 2);
    Tensor back = Tensor::Concat(parts, dim);
    EXPECT_TRUE(Tensor::BitEqual(t, back)) << "dim " << dim;
  }
}

TEST(TensorTest, SplitSizesUneven) {
  Tensor t = Iota({6, 2});
  std::vector<Tensor> parts = t.SplitSizes(0, {1, 2, 3});
  EXPECT_EQ(parts[0].shape(), (Shape{1, 2}));
  EXPECT_EQ(parts[1].shape(), (Shape{2, 2}));
  EXPECT_EQ(parts[2].shape(), (Shape{3, 2}));
  EXPECT_TRUE(Tensor::BitEqual(Tensor::Concat(parts, 0), t));
}

TEST(TensorTest, Concat3DMiddleDim) {
  Tensor a = Iota({2, 2, 3});
  Tensor b = Iota({2, 1, 3});
  Tensor c = Tensor::Concat({a, b}, 1);
  EXPECT_EQ(c.shape(), (Shape{2, 3, 3}));
  // Row layout per outer index: a's two rows then b's row.
  EXPECT_EQ(c.at(0), a.at(0));       // a[0][0][0]
  EXPECT_EQ(c.at(3), a.at(3));       // a[0][1][0]
  EXPECT_EQ(c.at(6), b.at(0));       // b[0][0][0]
  EXPECT_EQ(c.at(9), a.at(6));       // a[1][0][0]
  EXPECT_EQ(c.at(15), b.at(3));      // b[1][0][0]
}

TEST(TensorTest, Transpose2D) {
  Tensor t = Iota({2, 3});
  Tensor tt = t.Transpose2D();
  EXPECT_EQ(tt.shape(), (Shape{3, 2}));
  EXPECT_EQ(tt.at(0 * 2 + 1), t.at(1 * 3 + 0));
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a = Tensor::Full({4}, 2.0f);
  Tensor b = Tensor::Full({4}, 3.0f);
  a.Add_(b);
  EXPECT_EQ(a.at(0), 5.0f);
  a.Mul_(b);
  EXPECT_EQ(a.at(0), 15.0f);
  a.Sub_(b);
  EXPECT_EQ(a.at(0), 12.0f);
  a.Scale_(0.5f);
  EXPECT_EQ(a.at(0), 6.0f);
  a.AddScaled_(b, 2.0f);
  EXPECT_EQ(a.at(0), 12.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t = Tensor::FromVector({4}, {1.0f, -3.0f, 2.0f, 0.5f});
  EXPECT_DOUBLE_EQ(t.SumAll(), 0.5);
  EXPECT_EQ(t.MaxAbs(), 3.0f);
  EXPECT_DOUBLE_EQ(t.SquaredNorm(), 1.0 + 9.0 + 4.0 + 0.25);
  EXPECT_DOUBLE_EQ(t.Dot(t), t.SquaredNorm());
}

TEST(TensorTest, GaussianDeterministicAndShardable) {
  CounterRng rng(11, 5);
  Tensor full = Tensor::Gaussian({8, 4}, rng, 0, 1.0f);
  Tensor again = Tensor::Gaussian({8, 4}, rng, 0, 1.0f);
  EXPECT_TRUE(Tensor::BitEqual(full, again));
  // Offset counters index into the same stream: the second half of `full` equals a tensor
  // generated at counter_base = 16.
  Tensor tail = Tensor::Gaussian({4, 4}, rng, 16, 1.0f);
  EXPECT_TRUE(Tensor::BitEqual(full.Narrow(0, 4, 4), tail));
}

TEST(TensorTest, AllCloseTolerance) {
  Tensor a = Tensor::Full({3}, 1.0f);
  Tensor b = Tensor::Full({3}, 1.0f + 1e-7f);
  EXPECT_TRUE(Tensor::AllClose(a, b));
  Tensor c = Tensor::Full({3}, 1.1f);
  EXPECT_FALSE(Tensor::AllClose(a, c));
}

// ---------------- Matmul ----------------

TEST(MatmulTest, KnownProduct) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatmulNN(a, b);
  EXPECT_EQ(c.at(0), 58.0f);
  EXPECT_EQ(c.at(1), 64.0f);
  EXPECT_EQ(c.at(2), 139.0f);
  EXPECT_EQ(c.at(3), 154.0f);
}

TEST(MatmulTest, TransposedVariantsConsistent) {
  CounterRng rng(3, 1);
  Tensor a = Tensor::Gaussian({4, 5}, rng, 0, 1.0f);
  Tensor b = Tensor::Gaussian({5, 6}, rng, 100, 1.0f);
  Tensor nn = MatmulNN(a, b);
  // A^T from a pre-transposed matrix.
  Tensor tn = MatmulTN(a.Transpose2D(), b);
  EXPECT_TRUE(Tensor::AllClose(nn, tn, 1e-5f, 1e-5f));
  Tensor nt = MatmulNT(a, b.Transpose2D());
  EXPECT_TRUE(Tensor::AllClose(nn, nt, 1e-5f, 1e-5f));
}

TEST(MatmulTest, AccumulateAddsToExisting) {
  Tensor a = Tensor::Full({2, 2}, 1.0f);
  Tensor b = Tensor::Full({2, 2}, 1.0f);
  Tensor c = Tensor::Full({2, 2}, 10.0f);
  MatmulNN(a, b, c, /*accumulate=*/true);
  EXPECT_EQ(c.at(0), 12.0f);
  MatmulNN(a, b, c, /*accumulate=*/false);
  EXPECT_EQ(c.at(0), 2.0f);
}

// ---------------- bf16 / f16 ----------------

TEST(Bf16Test, ExactValuesSurvive) {
  for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 256.0f}) {
    EXPECT_EQ(Bf16ToF32(F32ToBf16(v)), v);
  }
}

TEST(Bf16Test, RoundingError) {
  float v = 1.00390625f;  // needs more mantissa bits than bf16 has
  float r = Bf16ToF32(F32ToBf16(v));
  EXPECT_NE(r, v);
  EXPECT_NEAR(r, v, 0.01f);
}

TEST(F16Test, ExactAndSubnormal) {
  for (float v : {0.0f, 1.0f, -0.25f, 1024.0f}) {
    EXPECT_EQ(F16ToF32(F32ToF16(v)), v);
  }
  // Value below f16 normal range but within subnormal range.
  float tiny = 1e-6f;
  float r = F16ToF32(F32ToF16(tiny));
  EXPECT_NEAR(r, tiny, 1e-7f);
}

TEST(F16Test, OverflowToInf) {
  EXPECT_TRUE(std::isinf(F16ToF32(F32ToF16(1e6f))));
}

TEST(RoundThroughTest, F32IsIdentity) {
  CounterRng rng(1, 1);
  Tensor t = Tensor::Gaussian({16}, rng, 0, 1.0f);
  EXPECT_TRUE(Tensor::BitEqual(RoundThrough(t, DType::kF32), t));
}

TEST(RoundThroughTest, Bf16IsIdempotent) {
  CounterRng rng(1, 2);
  Tensor t = Tensor::Gaussian({64}, rng, 0, 1.0f);
  Tensor once = RoundThrough(t, DType::kBF16);
  Tensor twice = RoundThrough(once, DType::kBF16);
  EXPECT_TRUE(Tensor::BitEqual(once, twice));
}

// ---------------- Serialization ----------------

class TensorFileTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_tensor_file_test"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }
  std::string dir_;
};

TEST_F(TensorFileTest, SaveLoadRoundTripF32) {
  CounterRng rng(5, 1);
  Tensor t = Tensor::Gaussian({3, 5, 2}, rng, 0, 2.0f);
  std::string path = PathJoin(dir_, "t.uct");
  ASSERT_TRUE(SaveTensor(path, t).ok());
  Result<Tensor> loaded = LoadTensor(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(Tensor::BitEqual(t, *loaded));
}

TEST_F(TensorFileTest, Bf16StorageRoundsValues) {
  CounterRng rng(5, 2);
  Tensor t = Tensor::Gaussian({32}, rng, 0, 1.0f);
  std::string path = PathJoin(dir_, "t16.uct");
  ASSERT_TRUE(SaveTensor(path, t, DType::kBF16).ok());
  Result<Tensor> loaded = LoadTensor(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(Tensor::BitEqual(*loaded, RoundThrough(t, DType::kBF16)));
}

TEST_F(TensorFileTest, StatReadsHeaderOnly) {
  Tensor t = Tensor::Zeros({7, 9});
  std::string path = PathJoin(dir_, "t.uct");
  ASSERT_TRUE(SaveTensor(path, t, DType::kF16).ok());
  Result<TensorFileInfo> info = StatTensor(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->shape, (Shape{7, 9}));
  EXPECT_EQ(info->dtype, DType::kF16);
  EXPECT_EQ(info->payload_bytes, 63u * 2);
}

TEST_F(TensorFileTest, CorruptionDetected) {
  Tensor t = Tensor::Full({16}, 1.5f);
  std::string path = PathJoin(dir_, "t.uct");
  ASSERT_TRUE(SaveTensor(path, t).ok());
  std::string contents = *ReadFileToString(path);
  contents[contents.size() / 2] ^= 0x40;  // flip a payload bit
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  EXPECT_EQ(LoadTensor(path).status().code(), StatusCode::kDataLoss);
}

TEST_F(TensorFileTest, TruncationDetected) {
  Tensor t = Tensor::Full({16}, 1.5f);
  std::string path = PathJoin(dir_, "t.uct");
  ASSERT_TRUE(SaveTensor(path, t).ok());
  std::string contents = *ReadFileToString(path);
  contents.resize(contents.size() - 10);
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());
  EXPECT_EQ(LoadTensor(path).status().code(), StatusCode::kDataLoss);
}

TEST_F(TensorFileTest, WrongMagicDetected) {
  std::string path = PathJoin(dir_, "b.ucb");
  TensorBundle bundle;
  bundle.Add("x", Tensor::Zeros({2}));
  bundle.meta = Json(JsonObject{});
  ASSERT_TRUE(SaveBundle(path, bundle).ok());
  // A bundle is not a tensor file.
  EXPECT_EQ(LoadTensor(path).status().code(), StatusCode::kDataLoss);
}

TEST_F(TensorFileTest, BundleRoundTripPreservesOrderAndMeta) {
  TensorBundle bundle;
  bundle.Add("z_last", Tensor::Full({2}, 1.0f));
  bundle.Add("a_first", Tensor::Full({3}, 2.0f));
  JsonObject meta;
  meta["iteration"] = 42;
  bundle.meta = Json(std::move(meta));

  std::string path = PathJoin(dir_, "bundle.ucb");
  ASSERT_TRUE(SaveBundle(path, bundle).ok());
  Result<TensorBundle> loaded = LoadBundle(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->tensors.size(), 2u);
  // Insertion order is preserved (flat-group layout depends on it).
  EXPECT_EQ(loaded->tensors[0].first, "z_last");
  EXPECT_EQ(loaded->tensors[1].first, "a_first");
  EXPECT_EQ(*loaded->meta.GetInt("iteration"), 42);
  EXPECT_TRUE(Tensor::BitEqual(*loaded->Find("a_first"), Tensor::Full({3}, 2.0f)));
  EXPECT_EQ(loaded->Find("missing"), nullptr);
}

TEST_F(TensorFileTest, StatBundleSkipsPayloads) {
  TensorBundle bundle;
  bundle.Add("w", Tensor::Zeros({8, 8}));
  bundle.meta = Json(JsonObject{{"tag", Json("x")}});
  std::string path = PathJoin(dir_, "bundle.ucb");
  ASSERT_TRUE(SaveBundle(path, bundle).ok());
  Result<BundleInfo> info = StatBundle(path);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->entries.size(), 1u);
  EXPECT_EQ(info->entries[0].first, "w");
  EXPECT_EQ(info->entries[0].second.shape, (Shape{8, 8}));
  EXPECT_EQ(*info->meta.GetString("tag"), "x");
}

}  // namespace
}  // namespace ucp
