#include <gtest/gtest.h>

#include <map>

#include "src/data/dataset.h"

namespace ucp {
namespace {

TEST(DatasetTest, SamplesDeterministic) {
  SyntheticTextDataset a(64, 16, 7);
  SyntheticTextDataset b(64, 16, 7);
  for (uint64_t id : {0ULL, 5ULL, 1000ULL}) {
    EXPECT_EQ(a.Sample(id), b.Sample(id));
  }
}

TEST(DatasetTest, SeedChangesData) {
  SyntheticTextDataset a(64, 16, 7);
  SyntheticTextDataset b(64, 16, 8);
  EXPECT_NE(a.Sample(0), b.Sample(0));
}

TEST(DatasetTest, TokensInRange) {
  SyntheticTextDataset data(32, 16, 1);
  for (uint64_t id = 0; id < 50; ++id) {
    for (int32_t tok : data.Sample(id)) {
      EXPECT_GE(tok, 0);
      EXPECT_LT(tok, 32);
    }
  }
}

TEST(DatasetTest, SampleLengthIsSeqPlusOne) {
  SyntheticTextDataset data(32, 16, 1);
  EXPECT_EQ(data.Sample(3).size(), 17u);
}

TEST(DatasetTest, MarkovStructurePresent) {
  // ~75% of transitions should follow the preferred-successor table; verify the stream is
  // predictable well above chance, i.e. it is learnable.
  SyntheticTextDataset data(64, 32, 9);
  int repeats_of_mode = 0;
  int total = 0;
  // Count how often the most common successor of token t follows t.
  std::map<int, std::map<int, int>> successor_counts;
  for (uint64_t id = 0; id < 200; ++id) {
    std::vector<int32_t> sample = data.Sample(id);
    for (size_t i = 0; i + 1 < sample.size(); ++i) {
      successor_counts[sample[i]][sample[i + 1]]++;
    }
  }
  for (const auto& [tok, successors] : successor_counts) {
    int mode = 0;
    int count = 0;
    for (const auto& [next, c] : successors) {
      count += c;
      mode = std::max(mode, c);
    }
    repeats_of_mode += mode;
    total += count;
  }
  EXPECT_GT(static_cast<double>(repeats_of_mode) / total, 0.5);
}

TEST(DatasetTest, BatchIdsContiguousPerIteration) {
  auto ids = SyntheticTextDataset::BatchSampleIds(3, 4);
  EXPECT_EQ(ids, (std::vector<uint64_t>{12, 13, 14, 15}));
}

TEST(DatasetTest, MakeBatchSlicesAreConsistentWithFullBatch) {
  // The DP-sharding invariant: any rank's slice of the global batch is bit-identical to the
  // corresponding rows of the full batch.
  SyntheticTextDataset data(64, 16, 7);
  Batch full = MakeBatch(data, 5, 8, 0, 8);
  Batch slice = MakeBatch(data, 5, 8, 2, 3);
  EXPECT_TRUE(Tensor::BitEqual(slice.tokens, full.tokens.Narrow(0, 2, 3)));
  EXPECT_TRUE(Tensor::BitEqual(slice.labels, full.labels.Narrow(0, 2, 3)));
}

TEST(DatasetTest, LabelsAreShiftedTokens) {
  SyntheticTextDataset data(64, 16, 7);
  Batch batch = MakeBatch(data, 0, 1, 0, 1);
  std::vector<int32_t> raw = data.Sample(0);
  for (int t = 0; t < 16; ++t) {
    EXPECT_EQ(batch.tokens.at(t), static_cast<float>(raw[static_cast<size_t>(t)]));
    EXPECT_EQ(batch.labels.at(t), static_cast<float>(raw[static_cast<size_t>(t + 1)]));
  }
}

}  // namespace
}  // namespace ucp
