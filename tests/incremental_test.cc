// Incremental checkpoint tests: dirty-chunk tracking, the content-addressed chunk index,
// and per-chunk compression on the async flush path, as properties:
//
//  1. Round trip: incremental async saves resume bit-exactly on both backends (LocalStore
//     and an in-process ucp_serverd), and a warm save of unchanged state writes <= 30% of
//     the cold save's physical bytes (in practice ~0: every chunk dedups).
//  2. Sliced loads over an incremental tag are bit-exact against the same state saved as a
//     full checkpoint, across a {TP1/2/4}x{PP1/2}x{DP1/2} sweep, for tags written through
//     either backend.
//  3. A forged chunk object (self-consistent header, wrong content for its digest) is
//     caught by the existing CRC verification on read — typed kDataLoss, localized to the
//     files referencing it.
//  4. A truncated or bit-rotted chunk manifest fails tag resolution typed (kDataLoss) —
//     never a silent fallback to stale or partial data.
//  5. A dangling chunk reference (object deleted out from under a manifest) fails reads
//     typed, is reported by deep validation and fsck, and violates soak invariant I6.
//  6. Bit rot in a chunk shared by two tags damages exactly the referencing files of both
//     tags — detected by deep validation on each.
//  7. A flusher killed mid-flush (fail-stop on a chunk write) never publishes the tag;
//     resume lands on the previous commit and the next save heals the store.
//  8. GC refcounts: Gc sweeps chunks only the removed tags referenced, keeps every chunk
//     live tags reference (I6), and after DeleteTag of all referers plus a sweep the chunk
//     directory is empty (I7).
//  9. Compression: compressible chunks store smaller and round trip bit-exactly;
//     incompressible chunks take the raw-codec bailout; an engine with compression on
//     still resumes bit-exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/ckpt/async/engine.h"
#include "src/ckpt/checkpoint.h"
#include "src/common/crc32.h"
#include "src/common/fault_fs.h"
#include "src/common/fs.h"
#include "src/soak/invariants.h"
#include "src/store/chunk_index.h"
#include "src/store/chunk_manifest.h"
#include "src/store/remote_store.h"
#include "src/store/server.h"
#include "src/tensor/chunk_digest.h"
#include "src/ucp/converter.h"
#include "src/ucp/elastic.h"
#include "src/ucp/loader.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

TrainerConfig ConfigFor(const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  return cfg;
}

AsyncCheckpointOptions IncrementalOptions(bool compress = false) {
  AsyncCheckpointOptions options;
  options.incremental = true;
  options.compress = compress;
  return options;
}

// Every chunk object path under `dir`'s content-addressed index.
std::vector<std::string> ChunkObjectPaths(const std::string& dir) {
  std::vector<std::string> paths;
  const std::string root = PathJoin(dir, kChunkDirName);
  Result<std::vector<std::string>> fans = ListDir(root);
  if (!fans.ok()) {
    return paths;
  }
  for (const std::string& fan : *fans) {
    Result<std::vector<std::string>> objects = ListDir(PathJoin(root, fan));
    if (!objects.ok()) {
      continue;
    }
    for (const std::string& object : *objects) {
      paths.push_back(PathJoin(PathJoin(root, fan), object));
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

// Path of a chunk object the tag's optimizer shard references — the shard every resume
// actually reads (a model_states chunk would be caught by validation but not by a native
// same-strategy resume, which restores weights from the fp32 master).
std::string OptimChunkObjectPath(const std::string& dir, const std::string& tag) {
  Result<std::optional<ChunkManifest>> manifest = ReadTagChunkManifest(PathJoin(dir, tag));
  UCP_CHECK(manifest.ok() && manifest->has_value());
  for (const ChunkManifestEntry& entry : (*manifest)->files) {
    if (entry.name.find("optim_states") != std::string::npos && !entry.chunks.empty()) {
      return PathJoin(dir, ChunkObjectRel(entry.chunks.front()));
    }
  }
  UCP_CHECK(false) << "no optim_states entry in " << tag << "'s manifest";
  return "";
}

bool HasProblemContaining(const ValidationReport& report, const std::string& needle) {
  for (const std::string& problem : report.problems) {
    if (problem.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// Both-backend fixture: "local" drives a LocalStore directly; "remote" stands up an
// in-process ucp_serverd over the same directory and drives it through RemoteStore (so
// dedup rides CHUNK_QUERY/CHUNK_PUT and the v2 handshake).
class IncrementalBackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    dir_ = *MakeTempDir("ucp_incr");
    if (remote()) {
      StoreServerOptions options;
      options.root = dir_;
      options.listen = "unix:" + dir_ + ".sock";
      Result<std::unique_ptr<StoreServer>> started = StoreServer::Start(std::move(options));
      ASSERT_TRUE(started.ok()) << started.status();
      server_ = std::move(*started);
      Result<std::shared_ptr<Store>> opened = OpenStore(server_->endpoint());
      ASSERT_TRUE(opened.ok()) << opened.status();
      store_ = *opened;
    } else {
      store_ = std::make_shared<LocalStore>(dir_);
    }
  }

  void TearDown() override {
    store_.reset();
    if (server_ != nullptr) {
      server_->Shutdown();
      server_.reset();
    }
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  bool remote() const { return std::string(GetParam()) == std::string("remote"); }

  static void SaveAsyncAll(TrainingRun& run, AsyncCheckpointEngine& engine,
                           int64_t iteration) {
    run.Run([&](RankTrainer& t) {
      Status s = engine.SaveAsync(t, iteration);
      UCP_CHECK(s.ok()) << s.ToString();
    });
    Status waited = engine.WaitForIteration(iteration);
    UCP_CHECK(waited.ok()) << waited.ToString();
  }

  std::string dir_;
  std::unique_ptr<StoreServer> server_;
  std::shared_ptr<Store> store_;
};

INSTANTIATE_TEST_SUITE_P(Backends, IncrementalBackendTest,
                         ::testing::Values("local", "remote"),
                         [](const ::testing::TestParamInfo<const char*>& param) {
                           return std::string(param.param);
                         });

// Property 1a: incremental saves commit tags a fresh world resumes from bit-exactly, the
// tag holds a manifest instead of physical shard files, and deep validation passes.
TEST_P(IncrementalBackendTest, RoundTripResumeBitExact) {
  TrainerConfig cfg = ConfigFor({1, 1, 2, 1, 1, 1});
  TrainingRun ref(cfg);
  std::vector<double> ref_losses = ref.Train(1, 6);

  {
    TrainingRun run(cfg);
    AsyncCheckpointEngine engine(store_, run.world_size(), IncrementalOptions());
    run.Train(1, 4, [&](RankTrainer& t, int64_t it) {
      if (it % 2 == 0) {
        Status s = engine.SaveAsync(t, it);
        UCP_CHECK(s.ok()) << s.ToString();
      }
    });
    ASSERT_TRUE(engine.WaitAll().ok());
    AsyncSaveStats stats = engine.stats();
    EXPECT_EQ(stats.commits, 2);
    EXPECT_EQ(stats.failures, 0);
    EXPECT_GT(stats.bytes_written, 0);
    EXPECT_GT(stats.chunks_flushed, 0);
  }

  // The tag is manifest-backed: no physical shard files, and the manifest parses.
  EXPECT_TRUE(FileExists(PathJoin(PathJoin(dir_, "global_step4"), kChunkManifestName)));
  EXPECT_FALSE(
      FileExists(PathJoin(PathJoin(dir_, "global_step4"), OptimStatesFileName(0, 0, 0, 0))));
  Result<std::optional<ChunkManifest>> manifest =
      ReadTagChunkManifest(PathJoin(dir_, "global_step4"));
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  ASSERT_TRUE(manifest->has_value());
  EXPECT_EQ((*manifest)->parent, "global_step2");
  EXPECT_FALSE((*manifest)->files.empty());

  Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, "global_step4");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->ToString();

  TrainingRun resumed(cfg);
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(dir_, t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    UCP_CHECK_EQ(r->iteration, 4);
  });
  std::vector<double> resumed_losses = resumed.Train(5, 6);
  ASSERT_EQ(resumed_losses.size(), 2u);
  EXPECT_DOUBLE_EQ(resumed_losses[0], ref_losses[4]);
  EXPECT_DOUBLE_EQ(resumed_losses[1], ref_losses[5]);
}

// Property 1b (the acceptance bound): a warm save of unchanged state flushes at most 30%
// of the cold save's physical bytes — in practice zero chunk objects, all dedup hits.
TEST_P(IncrementalBackendTest, WarmSaveWritesUnder30PercentOfCold) {
  TrainerConfig cfg = ConfigFor({1, 1, 2, 1, 1, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);

  AsyncCheckpointEngine engine(store_, run.world_size(), IncrementalOptions());
  SaveAsyncAll(run, engine, 2);
  const AsyncSaveStats cold = engine.stats();
  ASSERT_GT(cold.bytes_written, 0);

  // Same state, next tag: every chunk is already in the index.
  SaveAsyncAll(run, engine, 3);
  const AsyncSaveStats warm = engine.stats();
  ASSERT_TRUE(engine.WaitAll().ok());

  const int64_t warm_written = warm.bytes_written - cold.bytes_written;
  const int64_t warm_deduped = warm.chunks_deduped - cold.chunks_deduped;
  EXPECT_LE(warm_written, cold.bytes_written * 3 / 10)
      << "warm save flushed " << warm_written << " of " << cold.bytes_written;
  EXPECT_GT(warm_deduped, 0);
  EXPECT_EQ(warm.chunks_flushed, cold.chunks_flushed);  // no new chunk objects

  // Both tags resolve and deep-verify even though they share every chunk.
  for (const char* tag : {"global_step2", "global_step3"}) {
    Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, tag);
    ASSERT_TRUE(report.ok()) << tag << ": " << report.status();
    EXPECT_TRUE(report->ok()) << tag << ": " << report->ToString();
  }
}

// Property 2: sliced loads over an incremental tag are bit-exact against the identical
// state saved as a full checkpoint, across the reconfiguration sweep. The incremental tag
// is written through this backend; conversion and loading read the shared directory.
TEST_P(IncrementalBackendTest, SlicedLoadSweepBitExactVsFullSave) {
  ModelConfig model = TinyGpt();
  TrainerConfig source_config = ConfigFor({1, 1, 2, 1, 1, 1});
  TrainingRun source(source_config);
  source.Train(1, 3);

  const std::string full_dir = *MakeTempDir("ucp_incr_full");
  source.Run([&](RankTrainer& t) {
    Status s = SaveDistributedCheckpoint(full_dir, t, 3);
    UCP_CHECK(s.ok()) << s.ToString();
  });
  {
    AsyncCheckpointEngine engine(store_, source.world_size(), IncrementalOptions());
    SaveAsyncAll(source, engine, 3);
    ASSERT_TRUE(engine.WaitAll().ok());
  }

  Result<ConvertStats> full_converted =
      ConvertToUcp(full_dir, "global_step3", PathJoin(full_dir, "ucp"), {.num_threads = 2});
  ASSERT_TRUE(full_converted.ok()) << full_converted.status();
  // Converting the incremental tag reads every shard through the manifest.
  Result<ConvertStats> inc_converted =
      ConvertToUcp(dir_, "global_step3", PathJoin(dir_, "ucp"), {.num_threads = 2});
  ASSERT_TRUE(inc_converted.ok()) << inc_converted.status();
  EXPECT_EQ(inc_converted->atoms_written, full_converted->atoms_written);

  for (int tp : {1, 2, 4}) {
    for (int pp : {1, 2}) {
      for (int dp : {1, 2}) {
        ParallelConfig target{tp, pp, dp, 1, 1, 1};
        SCOPED_TRACE(target.ToString());
        TrainerConfig config;
        config.model = model;
        config.strategy = target;
        config.global_batch = 8;

        UcpLoadOptions load_options;
        load_options.num_threads = 2;
        load_options.sliced = true;

        TrainingRun from_full(config);
        from_full.Run([&](RankTrainer& t) {
          Status s = LoadUcpCheckpoint(PathJoin(full_dir, "ucp"), t, load_options);
          UCP_CHECK(s.ok()) << s.ToString();
        });
        TrainingRun from_inc(config);
        from_inc.Run([&](RankTrainer& t) {
          Status s = LoadUcpCheckpoint(PathJoin(dir_, "ucp"), t, load_options);
          UCP_CHECK(s.ok()) << s.ToString();
        });

        for (int r = 0; r < from_full.world_size(); ++r) {
          const ZeroOptimizer& a = from_inc.trainer(r).optimizer();
          const ZeroOptimizer& b = from_full.trainer(r).optimizer();
          EXPECT_TRUE(Tensor::BitEqual(a.MasterState(), b.MasterState())) << "rank " << r;
          EXPECT_TRUE(Tensor::BitEqual(a.ExpAvgState(), b.ExpAvgState())) << "rank " << r;
          EXPECT_TRUE(Tensor::BitEqual(a.ExpAvgSqState(), b.ExpAvgSqState()))
              << "rank " << r;
          EXPECT_EQ(a.steps_taken(), b.steps_taken()) << "rank " << r;
        }
      }
    }
  }
  ASSERT_TRUE(RemoveAll(full_dir).ok());
}

// Local-only corruption / fault / GC scenarios. The store directory is manipulated
// directly; every reader below goes through the manifest resolution path.
class IncrementalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_incr_fault"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  // Trains two iterations and commits incremental tags at 2 (cold) and, when asked, a
  // warm tag 3 sharing every chunk with tag 2.
  void SaveIncremental(bool warm_second_tag, bool compress = false) {
    TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
    TrainingRun run(cfg);
    run.Train(1, 2);
    AsyncCheckpointEngine engine(dir_, run.world_size(), IncrementalOptions(compress));
    run.Run([&](RankTrainer& t) { UCP_CHECK(engine.SaveAsync(t, 2).ok()); });
    ASSERT_TRUE(engine.WaitForIteration(2).ok());
    if (warm_second_tag) {
      run.Run([&](RankTrainer& t) { UCP_CHECK(engine.SaveAsync(t, 3).ok()); });
      ASSERT_TRUE(engine.WaitForIteration(3).ok());
    }
    ASSERT_TRUE(engine.WaitAll().ok());
  }

  std::string dir_;
};

// Property 3: a forged chunk — header self-consistent, content not matching the digest it
// is stored under — passes the chunk object's own CRC but is caught by the whole-file CRC
// layer on read, as typed kDataLoss localized to the referencing files.
TEST_F(IncrementalFaultTest, ForgedChunkObjectCaughtByReadCrc) {
  SaveIncremental(/*warm_second_tag=*/false);
  const std::string victim = OptimChunkObjectPath(dir_, "global_step2");

  // Forge: decode the object, flip its payload, re-encode with a *correct* header CRC for
  // the forged bytes. The object now verifies in isolation but lies about its digest.
  Result<std::string> encoded = ReadFileToString(victim);
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  Result<std::vector<uint8_t>> raw =
      DecodeChunkObject(encoded->data(), encoded->size(), victim);
  ASSERT_TRUE(raw.ok()) << raw.status();
  std::vector<uint8_t> forged = *raw;
  for (size_t i = 0; i < forged.size(); ++i) {
    forged[i] ^= 0xA5;
  }
  std::vector<uint8_t> reencoded =
      EncodeChunkObject(ChunkCodec::kRaw, static_cast<uint32_t>(forged.size()),
                        Crc32(forged.data(), forged.size()), forged.data(), forged.size());
  ASSERT_TRUE(WriteFileAtomic(victim, reencoded.data(), reencoded.size()).ok());

  // The chunk index itself accepts the forged object (its header is consistent)...
  Result<std::optional<ChunkManifest>> manifest =
      ReadTagChunkManifest(PathJoin(dir_, "global_step2"));
  ASSERT_TRUE(manifest.ok());
  ASSERT_TRUE(manifest->has_value());

  // ...but deep validation catches it: the materialized file no longer matches its CRC.
  Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, "global_step2");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->ok());
  // Localized: only files referencing the forged chunk fail; the rest still verify.
  EXPECT_LT(report->problems.size(), static_cast<size_t>((*manifest)->files.size()) + 2);

  // The load path fails typed rather than restoring forged state.
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElasticFromTag(dir_, "global_step2", t);
    UCP_CHECK(!r.ok());
    UCP_CHECK(r.status().code() == StatusCode::kDataLoss) << r.status().ToString();
  });
}

// Property 4: manifest damage is typed, never a silent fallback.
TEST_F(IncrementalFaultTest, TruncatedOrBitRottedManifestFailsTyped) {
  SaveIncremental(/*warm_second_tag=*/false);
  const std::string tag_dir = PathJoin(dir_, "global_step2");
  const std::string manifest_path = PathJoin(tag_dir, kChunkManifestName);
  Result<std::string> original = ReadFileToString(manifest_path);
  ASSERT_TRUE(original.ok()) << original.status();

  auto expect_typed_failure = [&](const std::string& label) {
    SCOPED_TRACE(label);
    Result<std::optional<ChunkManifest>> manifest = ReadTagChunkManifest(tag_dir);
    EXPECT_EQ(manifest.status().code(), StatusCode::kDataLoss);
    // Shard resolution fails typed too — no silent fallback to "file not found".
    Result<std::unique_ptr<ByteSource>> source =
        OpenTagShardSource(tag_dir, OptimStatesFileName(0, 0, 0, 0));
    EXPECT_EQ(source.status().code(), StatusCode::kDataLoss);
    Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, "global_step2");
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_FALSE(report->ok());
    EXPECT_TRUE(HasProblemContaining(*report, kChunkManifestName)) << report->ToString();
  };

  ASSERT_TRUE(WriteFileAtomic(manifest_path, original->substr(0, original->size() / 2)).ok());
  expect_typed_failure("truncated");

  std::string rotted = *original;
  rotted[rotted.size() - 2] ^= 0x01;  // flip a bit inside the JSON body
  ASSERT_TRUE(WriteFileAtomic(manifest_path, rotted).ok());
  expect_typed_failure("bit-rotted");

  // Restoring the manifest restores the tag: damage was never masked by a stale copy.
  ASSERT_TRUE(WriteFileAtomic(manifest_path, *original).ok());
  Result<ValidationReport> healed = ValidateNativeCheckpoint(dir_, "global_step2");
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_TRUE(healed->ok()) << healed->ToString();
}

// Property 5: a dangling reference fails reads typed, is visible to validation and fsck,
// and violates soak invariant I6.
TEST_F(IncrementalFaultTest, DanglingChunkReferenceFailsTypedAndViolatesI6) {
  SaveIncremental(/*warm_second_tag=*/false);
  ASSERT_TRUE(RemoveAll(OptimChunkObjectPath(dir_, "global_step2")).ok());

  Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, "global_step2");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->ok());

  Result<FsckReport> fsck = Fsck(dir_, /*quarantine=*/false);
  ASSERT_TRUE(fsck.ok()) << fsck.status();
  EXPECT_EQ(fsck->ExitCode(/*quarantine=*/false), 1);

  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElasticFromTag(dir_, "global_step2", t);
    UCP_CHECK(!r.ok());
    UCP_CHECK(r.status().code() == StatusCode::kDataLoss) << r.status().ToString();
  });

  SoakInvariantContext context;
  context.dir = dir_;
  context.max_trained_iteration = 100;
  context.corruptions_fired_total = 100;  // excuse I3; I6 has no corruption excuse
  SoakInvariantResult checked = CheckSoakInvariants(context);
  bool found_i6 = false;
  for (const std::string& violation : checked.violations) {
    found_i6 = found_i6 || violation.rfind("I6:", 0) == 0;
  }
  EXPECT_TRUE(found_i6) << "expected an I6 violation";
}

// Property 6: bit rot in a chunk shared by two tags is caught by deep validation of both.
TEST_F(IncrementalFaultTest, SharedChunkBitRotDamagesBothReferencingTags) {
  SaveIncremental(/*warm_second_tag=*/true);
  std::vector<std::string> objects = ChunkObjectPaths(dir_);
  ASSERT_FALSE(objects.empty());
  const std::string& victim = objects.front();
  Result<std::string> bytes = ReadFileToString(victim);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  ASSERT_GT(bytes->size(), kChunkHeaderBytes);
  std::string rotted = *bytes;
  rotted[rotted.size() - 1] ^= 0x40;  // payload bit flip; header left intact
  ASSERT_TRUE(WriteFileAtomic(victim, rotted).ok());

  for (const char* tag : {"global_step2", "global_step3"}) {
    Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, tag);
    ASSERT_TRUE(report.ok()) << tag << ": " << report.status();
    EXPECT_FALSE(report->ok()) << tag << " should fail deep validation";
  }
}

// Property 7: fail-stop on a chunk-object write mid-flush never publishes the tag; resume
// lands on the previous commit and the next save heals the store.
TEST_F(IncrementalFaultTest, KillMidFlushLeavesStoreResumable) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);
  AsyncCheckpointEngine engine(dir_, run.world_size(), IncrementalOptions());
  run.Run([&](RankTrainer& t) { UCP_CHECK(engine.SaveAsync(t, 2).ok()); });
  ASSERT_TRUE(engine.WaitForIteration(2).ok());

  run.Train(3, 4);
  {
    ScopedFault fault({FaultPlan::Kind::kFailStop, FsOp::kWrite, 1, "chunks/", 0});
    run.Run([&](RankTrainer& t) { UCP_CHECK(engine.SaveAsync(t, 4).ok()); });
    EXPECT_FALSE(engine.WaitForIteration(4).ok());
    EXPECT_TRUE(FaultFired());
  }
  EXPECT_EQ(engine.stats().failures, 1);
  EXPECT_FALSE(IsTagComplete(dir_, "global_step4"));
  Result<std::string> valid = FindLatestValidTag(dir_);
  ASSERT_TRUE(valid.ok()) << valid.status();
  EXPECT_EQ(*valid, "global_step2");

  // The next save of the same state succeeds and deep-verifies.
  run.Run([&](RankTrainer& t) { UCP_CHECK(engine.SaveAsync(t, 5).ok()); });
  ASSERT_TRUE(engine.WaitForIteration(5).ok());
  (void)engine.WaitAll();  // reports the injected failure (sticky by design), drains rest
  Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, "global_step5");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->ToString();
}

// Property 8: GC never drops a chunk a surviving tag references (I6), and refcounts
// converge — after deleting every referer and sweeping, the chunk directory is empty (I7).
TEST_F(IncrementalFaultTest, GcKeepsLiveChunksAndRefcountsConverge) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);
  LocalStore store(dir_);
  AsyncCheckpointEngine engine(dir_, run.world_size(), IncrementalOptions());
  run.Run([&](RankTrainer& t) { UCP_CHECK(engine.SaveAsync(t, 2).ok()); });
  ASSERT_TRUE(engine.WaitForIteration(2).ok());
  run.Train(3, 4);  // mutate state so tag 4 owns fresh chunks
  run.Run([&](RankTrainer& t) { UCP_CHECK(engine.SaveAsync(t, 4).ok()); });
  ASSERT_TRUE(engine.WaitForIteration(4).ok());
  run.Run([&](RankTrainer& t) { UCP_CHECK(engine.SaveAsync(t, 5).ok()); });  // warm twin of 4
  ASSERT_TRUE(engine.WaitForIteration(5).ok());
  ASSERT_TRUE(engine.WaitAll().ok());
  ASSERT_FALSE(ChunkObjectPaths(dir_).empty());

  // Drop tag 2: its exclusive chunks are swept; everything tags 4/5 share survives.
  Result<GcReport> gc = store.Gc(/*job=*/"", /*keep_last=*/2, /*dry_run=*/false);
  ASSERT_TRUE(gc.ok()) << gc.status();
  ASSERT_EQ(gc->removed.size(), 1u);
  EXPECT_EQ(gc->removed.front(), "global_step2");
  for (const char* tag : {"global_step4", "global_step5"}) {
    Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, tag);
    ASSERT_TRUE(report.ok()) << tag << ": " << report.status();
    EXPECT_TRUE(report->ok()) << tag << ": " << report->ToString();  // I6 held through GC
  }

  // Delete every referer, sweep, and the index must be empty.
  ASSERT_TRUE(store.DeleteTag("global_step4").ok());
  ASSERT_TRUE(store.DeleteTag("global_step5").ok());
  // Grace 0: this process holds every pin for the root, so convergence is immediate.
  Result<ChunkIndex::SweepReport> swept =
      ChunkIndex::ForRoot(dir_)->Sweep(/*dry_run=*/false, /*grace_seconds=*/0);
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_TRUE(ChunkObjectPaths(dir_).empty());

  SoakInvariantContext context;
  context.dir = dir_;
  context.max_trained_iteration = 100;
  context.expect_no_orphans = true;
  SoakInvariantResult checked = CheckSoakInvariants(context);
  EXPECT_EQ(checked.orphan_chunks, 0);
  for (const std::string& violation : checked.violations) {
    EXPECT_TRUE(violation.rfind("I7:", 0) != 0) << violation;
  }
}

// Property 9a: the chunk index's compression path — compressible chunks store smaller and
// round trip bit-exactly; incompressible chunks bail out to the raw codec.
TEST_F(IncrementalFaultTest, ChunkCompressionRoundTripAndBailout) {
  std::shared_ptr<ChunkIndex> index = ChunkIndex::ForRoot(dir_);

  std::vector<uint8_t> compressible(64 * 1024, 0);
  for (size_t i = 0; i < compressible.size(); i += 128) {
    compressible[i] = static_cast<uint8_t>(i / 128);
  }
  const uint64_t comp_digest = ChunkDigest(compressible.data(), compressible.size());
  ChunkedWriteStats stats;
  ASSERT_TRUE(index
                  ->Put(comp_digest, compressible.data(), compressible.size(),
                        /*try_compress=*/true, &stats)
                  .ok());
  EXPECT_EQ(stats.chunks_compressed, 1u);
  Result<ChunkIndex::ChunkStat> stat = index->StatChunk(comp_digest);
  ASSERT_TRUE(stat.ok()) << stat.status();
  ASSERT_TRUE(stat->exists);
  EXPECT_EQ(stat->codec, ChunkCodec::kLz);
  EXPECT_LT(stat->stored_size, compressible.size());
  Result<std::vector<uint8_t>> back = index->ReadChunk(comp_digest);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(*back == compressible);

  // Pseudo-random bytes: the 1/16 savings floor fails, the raw codec is kept.
  std::vector<uint8_t> incompressible(64 * 1024);
  uint64_t x = 0x9E3779B97F4A7C15ull;
  for (uint8_t& b : incompressible) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<uint8_t>(x);
  }
  const uint64_t raw_digest = ChunkDigest(incompressible.data(), incompressible.size());
  ASSERT_TRUE(index
                  ->Put(raw_digest, incompressible.data(), incompressible.size(),
                        /*try_compress=*/true, &stats)
                  .ok());
  Result<ChunkIndex::ChunkStat> raw_stat = index->StatChunk(raw_digest);
  ASSERT_TRUE(raw_stat.ok()) << raw_stat.status();
  ASSERT_TRUE(raw_stat->exists);
  EXPECT_EQ(raw_stat->codec, ChunkCodec::kRaw);
  Result<std::vector<uint8_t>> raw_back = index->ReadChunk(raw_digest);
  ASSERT_TRUE(raw_back.ok()) << raw_back.status();
  EXPECT_TRUE(*raw_back == incompressible);
}

// Property 9b: an engine with compression enabled still round-trips bit-exactly.
TEST_F(IncrementalFaultTest, CompressedIncrementalSaveResumesBitExact) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun ref(cfg);
  std::vector<double> ref_losses = ref.Train(1, 4);

  {
    TrainingRun run(cfg);
    AsyncCheckpointEngine engine(dir_, run.world_size(),
                                 IncrementalOptions(/*compress=*/true));
    run.Train(1, 2, [&](RankTrainer& t, int64_t it) {
      if (it == 2) {
        UCP_CHECK(engine.SaveAsync(t, it).ok());
      }
    });
    ASSERT_TRUE(engine.WaitAll().ok());
  }
  Result<ValidationReport> report = ValidateNativeCheckpoint(dir_, "global_step2");
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->ok()) << report->ToString();

  TrainingRun resumed(cfg);
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(dir_, t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    UCP_CHECK_EQ(r->iteration, 2);
  });
  std::vector<double> resumed_losses = resumed.Train(3, 4);
  ASSERT_EQ(resumed_losses.size(), 2u);
  EXPECT_DOUBLE_EQ(resumed_losses[0], ref_losses[2]);
  EXPECT_DOUBLE_EQ(resumed_losses[1], ref_losses[3]);
}

// A self-consistent chunk object whose content does not hash to its claimed digest must
// be rejected at publish time (kInvalidArgument), before any tag can dedup against it —
// not discovered as kDataLoss at load time when the checkpoint is already lost.
TEST_F(IncrementalFaultTest, PutEncodedRejectsForgedDigest) {
  std::shared_ptr<ChunkIndex> index = ChunkIndex::ForRoot(dir_);
  std::vector<uint8_t> a(64 * 1024, 0x11);
  std::vector<uint8_t> b(64 * 1024, 0x22);
  const uint64_t digest_a = ChunkDigest(a.data(), a.size());

  std::vector<uint8_t> forged =
      EncodeChunkObject(ChunkCodec::kRaw, static_cast<uint32_t>(b.size()),
                        Crc32(b.data(), b.size()), b.data(), b.size());
  Status put = index->PutEncoded(digest_a, forged.data(), forged.size());
  EXPECT_EQ(put.code(), StatusCode::kInvalidArgument) << put.ToString();
  EXPECT_FALSE(FileExists(PathJoin(dir_, ChunkObjectRel(digest_a))));

  // The honest object under the same digest still lands (and re-putting it dedups).
  std::vector<uint8_t> honest =
      EncodeChunkObject(ChunkCodec::kRaw, static_cast<uint32_t>(a.size()),
                        Crc32(a.data(), a.size()), a.data(), a.size());
  ASSERT_TRUE(index->PutEncoded(digest_a, honest.data(), honest.size()).ok());
  EXPECT_TRUE(FileExists(PathJoin(dir_, ChunkObjectRel(digest_a))));
  ASSERT_TRUE(index->PutEncoded(digest_a, honest.data(), honest.size()).ok());
}

// A 64-bit digest collision (two different contents, one address) must fail the save
// typed instead of silently substituting one chunk's bytes for the other's.
TEST_F(IncrementalFaultTest, DigestCollisionRefusedNotAliased) {
  std::shared_ptr<ChunkIndex> index = ChunkIndex::ForRoot(dir_);
  std::vector<uint8_t> a(64 * 1024, 0x11);
  std::vector<uint8_t> b(64 * 1024, 0x22);
  const uint64_t digest_a = ChunkDigest(a.data(), a.size());
  ASSERT_TRUE(index->Put(digest_a, a.data(), a.size(), false, nullptr).ok());

  // Same content under the same digest: a verified dedup hit.
  ASSERT_TRUE(index->Put(digest_a, a.data(), a.size(), false, nullptr).ok());
  // Different content under the same digest (a simulated collision): refused.
  Status collided = index->Put(digest_a, b.data(), b.size(), false, nullptr);
  EXPECT_EQ(collided.code(), StatusCode::kFailedPrecondition) << collided.ToString();

  // The presence query is content-verified too: the colliding probe reports "absent",
  // routing its writer into the refusing Put above instead of a silent by-reference skip.
  std::vector<ChunkIndex::ChunkProbe> probes = {
      {digest_a, static_cast<uint32_t>(a.size()), Crc32(a.data(), a.size())},
      {digest_a, static_cast<uint32_t>(b.size()), Crc32(b.data(), b.size())},
  };
  std::vector<uint8_t> present = index->PinAndQuery("global_step9", probes);
  ASSERT_EQ(present.size(), 2u);
  EXPECT_EQ(present[0], 1);
  EXPECT_EQ(present[1], 0);
  index->ReleaseTagPins("global_step9");
}

// Chunk pins are per-process, so a sweep must quarantine young unreferenced objects:
// they may be dirty chunks of another process's in-flight save whose manifest has not
// landed yet. Grace 0 (single-process ownership) reclaims immediately.
TEST_F(IncrementalFaultTest, SweepQuarantinesYoungUnreferencedChunks) {
  std::shared_ptr<ChunkIndex> index = ChunkIndex::ForRoot(dir_);
  std::vector<uint8_t> orphan(1024, 0x5A);
  const uint64_t digest = ChunkDigest(orphan.data(), orphan.size());
  ASSERT_TRUE(index->Put(digest, orphan.data(), orphan.size(), false, nullptr).ok());
  const std::string path = PathJoin(dir_, ChunkObjectRel(digest));
  ASSERT_TRUE(FileExists(path));

  Result<ChunkIndex::SweepReport> kept = index->Sweep(/*dry_run=*/false);
  ASSERT_TRUE(kept.ok()) << kept.status();
  EXPECT_EQ(kept->swept, 0u);
  EXPECT_EQ(kept->skipped_young, 1u);
  EXPECT_TRUE(FileExists(path));

  Result<ChunkIndex::SweepReport> swept =
      index->Sweep(/*dry_run=*/false, /*grace_seconds=*/0);
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_EQ(swept->swept, 1u);
  EXPECT_FALSE(FileExists(path));
}

// A corrupt or hostile manifest declaring chunk_bytes >= 2^32 must fail parsing typed —
// downstream consumers index chunks with arithmetic that is only safe below that.
TEST(ChunkManifestBoundsTest, RejectsOutOfRangeChunkBytes) {
  ChunkManifest manifest;
  manifest.chunk_bytes = 1ull << 32;  // would truncate to 0 in a 32-bit consumer
  Result<ChunkManifest> parsed = ParseChunkManifest(SerializeChunkManifest(manifest));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << parsed.status();

  manifest.chunk_bytes = kManifestChunkBytes;
  Result<ChunkManifest> ok = ParseChunkManifest(SerializeChunkManifest(manifest));
  EXPECT_TRUE(ok.ok()) << ok.status();
}

// CHUNK_QUERY pins are admission-controlled like staged bytes: a session over its budget
// is refused typed before anything is pinned, and commit/abort of the tag refunds it.
TEST(StoreServerChunkBudgetTest, BoundsPinnedChunksPerSession) {
  const std::string dir = *MakeTempDir("ucp_pin_budget");
  StoreServerOptions options;
  options.root = dir;
  options.listen = "unix:" + dir + ".sock";
  options.max_pinned_chunks = 4;
  Result<std::unique_ptr<StoreServer>> started = StoreServer::Start(std::move(options));
  ASSERT_TRUE(started.ok()) << started.status();
  std::unique_ptr<StoreServer> server = std::move(*started);
  Result<std::shared_ptr<Store>> opened = OpenStore(server->endpoint());
  ASSERT_TRUE(opened.ok()) << opened.status();
  std::shared_ptr<Store> store = *opened;

  // Distinct per-chunk content so every write queries distinct digests.
  auto chunk_data = [](size_t chunks, uint8_t seed) {
    std::vector<uint8_t> data(chunks * kManifestChunkBytes);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(seed + i / kManifestChunkBytes + (i * 131) % 251);
    }
    return data;
  };
  auto write_chunked = [&](StoreWriter& writer, const std::string& rel,
                           const std::vector<uint8_t>& data) {
    std::vector<uint64_t> digests = ComputeChunkDigests(data.data(), data.size());
    return writer.WriteFileChunked(rel, data.data(), data.size(), digests,
                                   /*compress=*/false, /*inherited=*/0);
  };

  Result<std::unique_ptr<StoreWriter>> writer = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(writer.ok()) << writer.status();
  // 6 probes against a budget of 4: refused before any pin lands.
  std::vector<uint8_t> big = chunk_data(6, 0);
  Result<ChunkedWriteStats> over = write_chunked(**writer, "big.bin", big);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.status().code(), StatusCode::kFailedPrecondition) << over.status();
  // 2 probes fit...
  std::vector<uint8_t> small = chunk_data(2, 50);
  ASSERT_TRUE(write_chunked(**writer, "small.bin", small).ok());
  // ...but 3 more would hold 5 > 4.
  std::vector<uint8_t> more = chunk_data(3, 100);
  Result<ChunkedWriteStats> third = write_chunked(**writer, "more.bin", more);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kFailedPrecondition) << third.status();

  // Aborting the tag refunds the session's pin budget; the same write then fits.
  ASSERT_TRUE(store->AbortTag("global_step1").ok());
  Result<std::unique_ptr<StoreWriter>> retry = store->OpenTagForWrite("global_step1");
  ASSERT_TRUE(retry.ok()) << retry.status();
  ASSERT_TRUE(write_chunked(**retry, "more.bin", more).ok());

  store.reset();
  server->Shutdown();
  server.reset();
  ASSERT_TRUE(RemoveAll(dir).ok());
}

}  // namespace
}  // namespace ucp
