// The UCP language: rule matching, the textual spec round trip, and consistency of the
// generated (ForStrategy) libraries with the model inventory.

#include <gtest/gtest.h>

#include "src/ucp/patterns.h"

namespace ucp {
namespace {

TEST(PatternRuleTest, ToPartitionSpec) {
  PatternRule frag{ParamPattern::kFragmentParams, "*", 1, {8, 2, 2}};
  PartitionSpec spec = frag.ToPartitionSpec();
  EXPECT_EQ(spec.kind, PartitionKind::kFragment);
  EXPECT_EQ(spec.dim, 1);
  EXPECT_EQ(spec.sections, (std::vector<int64_t>{8, 2, 2}));

  PatternRule avg{ParamPattern::kParamsToAverage, "*", 0, {}};
  EXPECT_EQ(avg.ToPartitionSpec().kind, PartitionKind::kToAverage);
}

TEST(PatternLibraryTest, FirstMatchWins) {
  PatternLibrary lib;
  lib.FragmentParams("*.query_key_value.weight", 0)
      .ReplicatedParams("*layernorm*")
      .UniqueParams("*");
  EXPECT_EQ(lib.Match("a.query_key_value.weight")->pattern,
            ParamPattern::kFragmentParams);
  EXPECT_EQ(lib.Match("x.input_layernorm.weight")->pattern,
            ParamPattern::kReplicatedParams);
  EXPECT_EQ(lib.Match("anything.else")->pattern, ParamPattern::kUniqueParams);
}

TEST(PatternLibraryTest, NoMatchIsNotFound) {
  PatternLibrary lib;
  lib.UniqueParams("only.this");
  EXPECT_EQ(lib.Match("something.else").status().code(), StatusCode::kNotFound);
}

TEST(PatternLibraryTest, SpecRoundTrip) {
  PatternLibrary lib;
  lib.FragmentParams("language_model.encoder.layers.*.self_attention.query_key_value.weight",
                     0, {64, 16, 16})
      .FragmentParams("*.dense.weight", 1)
      .ParamsToAverage("*layernorm.weight")
      .ReplicatedParams("*.bias")
      .UniqueParams("*");

  std::string spec = lib.ToSpec();
  Result<PatternLibrary> back = PatternLibrary::FromSpec(spec);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->rules().size(), lib.rules().size());
  for (size_t i = 0; i < lib.rules().size(); ++i) {
    EXPECT_EQ(back->rules()[i].pattern, lib.rules()[i].pattern);
    EXPECT_EQ(back->rules()[i].glob, lib.rules()[i].glob);
    EXPECT_EQ(back->rules()[i].dim, lib.rules()[i].dim);
    EXPECT_EQ(back->rules()[i].sections, lib.rules()[i].sections);
  }
}

TEST(PatternLibraryTest, SpecParsesCommentsAndWhitespace) {
  const char* text = R"(
# full-line comment
  fragment   *.qkv.weight   dim=0 sections=8,2,2   # trailing comment
to_average *norm.weight
unique *
)";
  Result<PatternLibrary> lib = PatternLibrary::FromSpec(text);
  ASSERT_TRUE(lib.ok()) << lib.status();
  ASSERT_EQ(lib->rules().size(), 3u);
  EXPECT_EQ(lib->rules()[0].sections, (std::vector<int64_t>{8, 2, 2}));
  EXPECT_EQ(lib->rules()[1].pattern, ParamPattern::kParamsToAverage);
}

TEST(PatternLibraryTest, MalformedSpecsRejected) {
  EXPECT_FALSE(PatternLibrary::FromSpec("fragment").ok());             // missing glob
  EXPECT_FALSE(PatternLibrary::FromSpec("bogus *").ok());              // unknown pattern
  EXPECT_FALSE(PatternLibrary::FromSpec("unique * dim=1").ok());       // dim on non-fragment
  EXPECT_FALSE(PatternLibrary::FromSpec("fragment * flags=3").ok());   // unknown option
}

// ForStrategy must classify every inventory parameter consistently with EffectiveSpec —
// this is the consistency contract between the declarative language and the runtime.
void CheckLibraryConsistency(const ModelConfig& model, const ParallelConfig& source) {
  PatternLibrary lib = PatternLibrary::ForStrategy(model, source);
  for (const InventoryEntry& entry : BuildInventory(model)) {
    Result<PatternRule> rule = lib.Match(entry.param.name);
    ASSERT_TRUE(rule.ok()) << entry.param.name;
    PartitionSpec spec = EffectiveSpec(entry, source);
    switch (spec.kind) {
      case PartitionKind::kToAverage:
        EXPECT_EQ(rule->pattern, ParamPattern::kParamsToAverage) << entry.param.name;
        break;
      case PartitionKind::kFragment:
        if (source.tp > 1) {
          EXPECT_EQ(rule->pattern, ParamPattern::kFragmentParams) << entry.param.name;
          EXPECT_EQ(rule->dim, spec.dim) << entry.param.name;
          EXPECT_EQ(rule->sections, spec.sections) << entry.param.name;
        } else {
          EXPECT_NE(rule->pattern, ParamPattern::kFragmentParams) << entry.param.name;
        }
        break;
      case PartitionKind::kReplicated:
        if (source.tp > 1 || source.sp > 1) {
          EXPECT_EQ(rule->pattern, ParamPattern::kReplicatedParams) << entry.param.name;
        }
        break;
    }
  }
}

TEST(ForStrategyTest, Gpt3dParallel) {
  CheckLibraryConsistency(Gpt3Scaled(), {2, 2, 2, 1, 1, 1});
}

TEST(ForStrategyTest, GptSequenceParallel) {
  CheckLibraryConsistency(Gpt3Scaled(), {1, 1, 2, 2, 1, 1});
}

TEST(ForStrategyTest, GptPureDp) {
  ParallelConfig dp_only{1, 1, 4, 1, 2, 1};
  PatternLibrary lib = PatternLibrary::ForStrategy(Gpt3Scaled(), dp_only);
  // With tp = sp = 1 and no tying, everything is unique.
  for (const PatternRule& rule : lib.rules()) {
    EXPECT_EQ(rule.pattern, ParamPattern::kUniqueParams) << rule.glob;
  }
}

TEST(ForStrategyTest, LlamaGqaSections) {
  PatternLibrary lib = PatternLibrary::ForStrategy(LlamaScaled(), {2, 1, 1, 1, 0, 1});
  Result<PatternRule> rule = lib.Match(
      "language_model.encoder.layers.2.self_attention.query_key_value.weight");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->pattern, ParamPattern::kFragmentParams);
  // LlamaScaled: hidden=64, kv_heads=2, head_dim=16 -> sections {64, 32, 32}.
  EXPECT_EQ(rule->sections, (std::vector<int64_t>{64, 32, 32}));
}

TEST(ForStrategyTest, MoeExpertDims) {
  PatternLibrary lib = PatternLibrary::ForStrategy(MoeScaled(), {2, 2, 2, 1, 1, 1});
  EXPECT_EQ(lib.Match("language_model.encoder.layers.0.mlp.moe.experts.w1")->dim, 1);
  EXPECT_EQ(lib.Match("language_model.encoder.layers.0.mlp.moe.experts.w2")->dim, 2);
  EXPECT_EQ(lib.Match("language_model.encoder.layers.0.mlp.moe.gate.weight")->pattern,
            ParamPattern::kReplicatedParams);
}

TEST(ForStrategyTest, TiedEmbeddingReplicatedAcrossPp) {
  // BLOOM-like tied embeddings: with pp > 1 (tp = 1) the embedding is replicated across the
  // first/last stages rather than unique.
  PatternLibrary lib = PatternLibrary::ForStrategy(BloomScaled(), {1, 4, 2, 1, 1, 1});
  EXPECT_EQ(lib.Match("language_model.embedding.word_embeddings.weight")->pattern,
            ParamPattern::kReplicatedParams);
  // A mid-stack layer param stays unique.
  EXPECT_EQ(lib.Match("language_model.encoder.layers.3.mlp.dense_h_to_4h.weight")->pattern,
            ParamPattern::kUniqueParams);
}

TEST(ForStrategyTest, GeneratedLibrarySurvivesSpecRoundTrip) {
  PatternLibrary lib = PatternLibrary::ForStrategy(MoeScaled(), {2, 2, 1, 1, 0, 1});
  Result<PatternLibrary> back = PatternLibrary::FromSpec(lib.ToSpec());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->rules().size(), lib.rules().size());
  for (size_t i = 0; i < lib.rules().size(); ++i) {
    EXPECT_EQ(back->rules()[i].glob, lib.rules()[i].glob);
    EXPECT_EQ(back->rules()[i].pattern, lib.rules()[i].pattern);
  }
}

}  // namespace
}  // namespace ucp
