// End-to-end UCP properties (the paper's core claims, as tests):
//
//  1. Lossless reshard: source ckpt -> UCP -> load under target -> target ckpt -> UCP is
//     bit-identical to the first conversion, for a parameterized sweep of strategy pairs.
//  2. Convergence continuity: training resumed from UCP under any target tracks the
//     uninterrupted source run (bit-exact when the target equals the source; within fp
//     reduction-order tolerance otherwise).
//  3. UCP atoms equal the state of an equivalent serial (single-rank) run.
//  4. Cross-framework ingestion (foreign DDP checkpoint -> UCP -> 3-D parallel resume).
//  5. Mixed-precision: fp32 masters survive a bf16 -> f16 switch.

#include <gtest/gtest.h>

#include "src/ckpt/checkpoint.h"
#include "src/ckpt/foreign.h"
#include "src/common/fs.h"
#include "src/ucp/converter.h"
#include "src/ucp/elastic.h"
#include "src/ucp/loader.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

TrainerConfig ConfigFor(const ModelConfig& model, const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = model;
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  cfg.lr.warmup_iters = 2;
  cfg.lr.decay_iters = 30;
  return cfg;
}

class UcpEnv : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_integration"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::string Sub(const std::string& name) { return PathJoin(dir_, name); }

  static void SaveAll(TrainingRun& run, const std::string& dir, int64_t iteration) {
    run.Run([&](RankTrainer& t) {
      Status s = SaveDistributedCheckpoint(dir, t, iteration);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }

  static void LoadAll(TrainingRun& run, const std::string& ucp_dir) {
    run.Run([&](RankTrainer& t) {
      Status s = LoadUcpCheckpoint(ucp_dir, t);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }

  std::string dir_;
};

struct ReshardCase {
  ParallelConfig source;
  ParallelConfig target;
  const char* label;
};

class ReshardSweepTest : public UcpEnv, public ::testing::WithParamInterface<ReshardCase> {};

// Property 1+2 for each pair: reshard is lossless and training continues correctly.
TEST_P(ReshardSweepTest, LosslessAndContinuous) {
  const ReshardCase& c = GetParam();
  ModelConfig model = TinyGpt();

  // Train the source and checkpoint at iteration 3.
  TrainingRun source(ConfigFor(model, c.source));
  source.Train(1, 3);
  SaveAll(source, Sub("src"), 3);

  // Convert to UCP.
  Result<ConvertStats> stats =
      ConvertToUcp(Sub("src"), "global_step3", Sub("ucp"), {.num_threads = 2});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->atoms_written, 0);

  // Load into the target and immediately checkpoint it again.
  TrainingRun target(ConfigFor(model, c.target));
  LoadAll(target, Sub("ucp"));
  SaveAll(target, Sub("tgt"), 3);
  Result<ConvertStats> stats2 =
      ConvertToUcp(Sub("tgt"), "global_step3", Sub("ucp2"), {.num_threads = 2});
  ASSERT_TRUE(stats2.ok()) << stats2.status();

  // Lossless round trip: both UCP directories hold bit-identical atoms.
  Result<UcpMeta> meta = ReadUcpMeta(Sub("ucp"));
  ASSERT_TRUE(meta.ok());
  for (const std::string& name : meta->atom_names) {
    Result<ParamState> a = ReadAtom(Sub("ucp"), name);
    Result<ParamState> b = ReadAtom(Sub("ucp2"), name);
    ASSERT_TRUE(a.ok()) << name;
    ASSERT_TRUE(b.ok()) << name;
    EXPECT_TRUE(Tensor::BitEqual(a->fp32, b->fp32)) << name;
    EXPECT_TRUE(Tensor::BitEqual(a->exp_avg, b->exp_avg)) << name;
    EXPECT_TRUE(Tensor::BitEqual(a->exp_avg_sq, b->exp_avg_sq)) << name;
  }

  // Convergence continuity: resumed training tracks the uninterrupted source.
  auto continued = source.Train(4, 6);
  auto resumed = target.Train(4, 6);
  bool same_strategy = c.source == c.target;
  for (size_t i = 0; i < continued.size(); ++i) {
    if (same_strategy) {
      EXPECT_DOUBLE_EQ(resumed[i], continued[i]) << c.label << " iter " << 4 + i;
    } else {
      EXPECT_NEAR(resumed[i], continued[i], 5e-3) << c.label << " iter " << 4 + i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StrategyPairs, ReshardSweepTest,
    ::testing::Values(
        // Same strategy: resume must be bit-exact.
        ReshardCase{{2, 2, 2, 1, 1, 1}, {2, 2, 2, 1, 1, 1}, "identity_3d"},
        // The paper's flagship: 3-D parallel -> pure DP and back.
        ReshardCase{{2, 2, 2, 1, 1, 1}, {1, 1, 2, 1, 2, 1}, "3d_to_dp2_zero2"},
        ReshardCase{{1, 1, 4, 1, 2, 1}, {2, 2, 1, 1, 0, 1}, "dp4_zero2_to_tp2pp2"},
        // ZeRO-3 in both directions.
        ReshardCase{{1, 1, 4, 1, 3, 1}, {2, 1, 2, 1, 1, 1}, "zero3_to_tp2dp2"},
        ReshardCase{{2, 1, 2, 1, 1, 1}, {1, 1, 2, 1, 3, 1}, "tp2dp2_to_zero3"},
        // TP degree changes (shard resplitting).
        ReshardCase{{2, 1, 1, 1, 0, 1}, {4, 1, 1, 1, 0, 1}, "tp2_to_tp4"},
        ReshardCase{{4, 1, 1, 1, 0, 1}, {1, 2, 2, 1, 1, 1}, "tp4_to_pp2dp2"},
        // PP changes (stage remapping).
        ReshardCase{{1, 2, 2, 1, 1, 2}, {1, 1, 1, 1, 0, 1}, "pp2dp2_to_serial"},
        ReshardCase{{1, 1, 1, 1, 0, 1}, {2, 2, 1, 1, 0, 1}, "serial_to_tp2pp2"},
        // Sequence parallelism as source (params_to_average) and as target.
        ReshardCase{{1, 1, 2, 2, 1, 1}, {2, 1, 2, 1, 1, 1}, "sp2_to_tp2dp2"},
        ReshardCase{{2, 1, 2, 1, 1, 1}, {1, 1, 2, 2, 1, 1}, "tp2dp2_to_sp2"},
        // Elastic capacity: shrink 8 -> 2 ranks and grow 2 -> 8.
        ReshardCase{{2, 2, 2, 1, 1, 1}, {1, 1, 2, 1, 1, 1}, "shrink_8_to_2"},
        ReshardCase{{1, 1, 2, 1, 1, 1}, {2, 2, 2, 1, 1, 1}, "grow_2_to_8"}),
    [](const ::testing::TestParamInfo<ReshardCase>& info) { return info.param.label; });

// Property 3: atoms equal the state of an equivalent serial run (strong correctness anchor
// for ZeRO-0/1: identical arithmetic, so bit-exact).
TEST_F(UcpEnv, AtomsMatchSerialRunState) {
  ModelConfig model = TinyGpt();
  TrainingRun serial(ConfigFor(model, {1, 1, 1, 1, 0, 1}));
  serial.Train(1, 3);

  TrainingRun parallel(ConfigFor(model, {1, 2, 2, 1, 1, 1}));
  parallel.Train(1, 3);
  SaveAll(parallel, Sub("src"), 3);
  ASSERT_TRUE(ConvertToUcp(Sub("src"), "global_step3", Sub("ucp")).ok());

  // DP averaging order differs between dp=1 and dp=2, so compare within tolerance; PP-only
  // splits would be bit-exact.
  for (const ParamPtr& p : serial.trainer(0).model().store().params()) {
    Result<ParamState> atom = ReadAtom(Sub("ucp"), p->info.name);
    ASSERT_TRUE(atom.ok()) << p->info.name;
    EXPECT_EQ(atom->fp32.shape(), p->value.shape());
    EXPECT_TRUE(Tensor::AllClose(atom->fp32, p->value, 1e-4f, 1e-3f)) << p->info.name;
  }
}

TEST_F(UcpEnv, GqaModelReshardsAcrossTpDegrees) {
  ModelConfig model = TinyLlama();  // GQA: variable-size QKV sections
  TrainingRun source(ConfigFor(model, {2, 1, 2, 1, 1, 1}));
  source.Train(1, 3);
  SaveAll(source, Sub("src"), 3);
  ASSERT_TRUE(ConvertToUcp(Sub("src"), "global_step3", Sub("ucp")).ok());

  TrainingRun target(ConfigFor(model, {1, 2, 2, 1, 2, 1}));
  LoadAll(target, Sub("ucp"));
  auto continued = source.Train(4, 6);
  auto resumed = target.Train(4, 6);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_NEAR(resumed[i], continued[i], 5e-3) << "iter " << 4 + i;
  }
}

TEST_F(UcpEnv, MoeModelReshardsExpertTensors) {
  ModelConfig model = TinyMoe();
  TrainingRun source(ConfigFor(model, {1, 2, 2, 1, 1, 1}));
  source.Train(1, 3);
  SaveAll(source, Sub("src"), 3);
  ASSERT_TRUE(ConvertToUcp(Sub("src"), "global_step3", Sub("ucp")).ok());

  TrainingRun target(ConfigFor(model, {2, 1, 2, 1, 1, 1}));  // TP now splits experts
  LoadAll(target, Sub("ucp"));
  auto continued = source.Train(4, 6);
  auto resumed = target.Train(4, 6);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_NEAR(resumed[i], continued[i], 5e-3) << "iter " << 4 + i;
  }
}

TEST_F(UcpEnv, MoeReshardsBetweenShardingModes) {
  // Source: ffn-dim TP inside every expert. Target: whole-expert parallelism. The atoms are
  // sharding-mode agnostic, so the reshard goes through despite differently-shaped local
  // shards.
  ModelConfig ffn_mode = TinyMoe();
  TrainingRun source(ConfigFor(ffn_mode, {2, 1, 2, 1, 1, 1}));
  source.Train(1, 3);
  SaveAll(source, Sub("src"), 3);
  ASSERT_TRUE(ConvertToUcp(Sub("src"), "global_step3", Sub("ucp")).ok());

  ModelConfig expert_mode = TinyMoe();
  expert_mode.moe_expert_sharding = true;
  TrainingRun target(ConfigFor(expert_mode, {2, 1, 2, 1, 1, 1}));
  LoadAll(target, Sub("ucp"));

  // Shard shapes prove the mode switch actually happened: [E/2, ffn, h] vs [E, ffn/2, h].
  ParamPtr w1 = target.trainer(0).model().store().Get(
      "language_model.encoder.layers.0.mlp.moe.experts.w1");
  EXPECT_EQ(w1->value.shape(), (Shape{1, 32, 32}));

  auto continued = source.Train(4, 6);
  auto resumed = target.Train(4, 6);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_NEAR(resumed[i], continued[i], 5e-3) << "iter " << 4 + i;
  }
}

TEST_F(UcpEnv, ElasticResumeTakesNativeFastPathWhenUnchanged) {
  ModelConfig model = TinyGpt();
  TrainerConfig cfg = ConfigFor(model, {2, 1, 2, 1, 1, 1});
  TrainingRun run(cfg);
  run.Train(1, 3);
  SaveAll(run, Sub("ckpt"), 3);

  TrainingRun same(cfg);
  std::vector<ResumeReport::Path> paths(static_cast<size_t>(same.world_size()));
  same.Run([&](RankTrainer& t) {
    Result<ResumeReport> report = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(report.ok()) << report.status().ToString();
    UCP_CHECK_EQ(report->iteration, 3);
    paths[static_cast<size_t>(t.rank())] = report->path;
  });
  for (ResumeReport::Path p : paths) {
    EXPECT_EQ(p, ResumeReport::Path::kNative);
  }
  // No UCP cache was created.
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step3.ucp")));
}

TEST_F(UcpEnv, ElasticResumeConvertsOnStrategyChangeAndCaches) {
  ModelConfig model = TinyGpt();
  TrainingRun source(ConfigFor(model, {2, 2, 2, 1, 1, 1}));
  source.Train(1, 3);
  SaveAll(source, Sub("ckpt"), 3);

  TrainerConfig target_cfg = ConfigFor(model, {1, 1, 2, 1, 2, 1});
  TrainingRun target(target_cfg);
  std::vector<ResumeReport::Path> paths(2);
  target.Run([&](RankTrainer& t) {
    Result<ResumeReport> report = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(report.ok()) << report.status().ToString();
    paths[static_cast<size_t>(t.rank())] = report->path;
  });
  for (ResumeReport::Path p : paths) {
    EXPECT_EQ(p, ResumeReport::Path::kUcpConverted);
  }
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step3.ucp")));

  // A second resume reuses the cached conversion.
  TrainingRun again(target_cfg);
  again.Run([&](RankTrainer& t) {
    Result<ResumeReport> report = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(report.ok()) << report.status().ToString();
    UCP_CHECK(report->path == ResumeReport::Path::kUcpCached);
  });

  // And the resumed trajectory tracks the source.
  auto continued = source.Train(4, 6);
  auto resumed = target.Train(4, 6);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_NEAR(resumed[i], continued[i], 5e-3);
  }
}

TEST_F(UcpEnv, ValidationPassesOnHealthyCheckpoints) {
  ModelConfig model = TinyGpt();
  TrainingRun run(ConfigFor(model, {2, 1, 2, 1, 2, 1}));
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);
  ASSERT_TRUE(ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp")).ok());

  Result<ValidationReport> native = ValidateNativeCheckpoint(Sub("ckpt"), "global_step2");
  ASSERT_TRUE(native.ok());
  EXPECT_TRUE(native->ok()) << native->ToString();
  EXPECT_GT(native->files_checked, 0);

  Result<ValidationReport> ucp = ValidateUcpCheckpoint(Sub("ucp"));
  ASSERT_TRUE(ucp.ok());
  EXPECT_TRUE(ucp->ok()) << ucp->ToString();
}

TEST_F(UcpEnv, ValidationFlagsMissingAndCorruptFiles) {
  ModelConfig model = TinyGpt();
  TrainingRun run(ConfigFor(model, {1, 1, 2, 1, 1, 1}));
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);
  ASSERT_TRUE(ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp")).ok());

  // Corrupt one optimizer shard, delete one atom tensor.
  std::string optim = Sub("ckpt/global_step2/" + OptimStatesFileName(1, 0, 0, 0));
  std::string contents = *ReadFileToString(optim);
  contents[contents.size() / 3] ^= 0x10;
  ASSERT_TRUE(WriteFileAtomic(optim, contents).ok());
  ASSERT_TRUE(RemoveAll(PathJoin(
                  AtomDir(Sub("ucp"), "language_model.encoder.final_layernorm.weight"),
                  "exp_avg"))
                  .ok());

  Result<ValidationReport> native = ValidateNativeCheckpoint(Sub("ckpt"), "global_step2");
  ASSERT_TRUE(native.ok());
  EXPECT_FALSE(native->ok());

  Result<ValidationReport> ucp = ValidateUcpCheckpoint(Sub("ucp"));
  ASSERT_TRUE(ucp.ok());
  EXPECT_FALSE(ucp->ok());
  EXPECT_EQ(ucp->problems.size(), 1u) << ucp->ToString();
}

TEST_F(UcpEnv, TiedEmbeddingsSurviveReshard) {
  ModelConfig model = TinyGpt();
  model.arch = ArchKind::kBloom;
  model.tied_embeddings = true;
  TrainingRun source(ConfigFor(model, {1, 2, 2, 1, 1, 1}));
  source.Train(1, 3);
  SaveAll(source, Sub("src"), 3);
  ASSERT_TRUE(ConvertToUcp(Sub("src"), "global_step3", Sub("ucp")).ok());

  // Target pp=2 again but different dp; the tied copy must land on both edge stages.
  TrainingRun target(ConfigFor(model, {1, 2, 1, 1, 0, 1}));
  LoadAll(target, Sub("ucp"));
  ParamPtr first = target.trainer(0).model().store().Get(
      "language_model.embedding.word_embeddings.weight");
  ParamPtr last = target.trainer(1).model().store().Get(
      "language_model.embedding.word_embeddings.weight");
  EXPECT_TRUE(Tensor::BitEqual(first->value, last->value));

  auto continued = source.Train(4, 6);
  auto resumed = target.Train(4, 6);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_NEAR(resumed[i], continued[i], 5e-3);
  }
}

// Property 4: cross-framework support.
TEST_F(UcpEnv, ForeignCheckpointIngestsAndReshards) {
  ModelConfig model = TinyGpt();
  TrainingRun ddp(ConfigFor(model, {1, 1, 2, 1, 0, 1}));
  ddp.Train(1, 3);
  ddp.Run([&](RankTrainer& t) {
    UCP_CHECK(SaveForeignCheckpoint(Sub("foreign"), t, 3).ok());
  });
  Result<ConvertStats> stats =
      ConvertForeignToUcp(Sub("foreign"), "foreign_step3", Sub("ucp"));
  ASSERT_TRUE(stats.ok()) << stats.status();

  TrainingRun target(ConfigFor(model, {2, 2, 1, 1, 0, 1}));
  LoadAll(target, Sub("ucp"));
  auto continued = ddp.Train(4, 6);
  auto resumed = target.Train(4, 6);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_NEAR(resumed[i], continued[i], 5e-3);
  }
}

// Property 5: fp32 masters let a run switch half formats (paper §3.1 MPT discussion).
TEST_F(UcpEnv, MixedPrecisionSwitchBf16ToF16) {
  ModelConfig model = TinyGpt();
  TrainerConfig bf16 = ConfigFor(model, {2, 1, 1, 1, 1, 1});
  bf16.compute_dtype = DType::kBF16;
  TrainingRun source(bf16);
  source.Train(1, 3);
  SaveAll(source, Sub("src"), 3);
  ASSERT_TRUE(ConvertToUcp(Sub("src"), "global_step3", Sub("ucp")).ok());

  TrainerConfig f16 = ConfigFor(model, {1, 1, 2, 1, 1, 1});
  f16.compute_dtype = DType::kF16;
  TrainingRun target(f16);
  LoadAll(target, Sub("ucp"));
  auto continued = source.Train(4, 6);
  auto resumed = target.Train(4, 6);
  for (size_t i = 0; i < continued.size(); ++i) {
    // Different rounding formats diverge faster than pure fp reorder; loose tolerance.
    EXPECT_NEAR(resumed[i], continued[i], 3e-2);
  }
}

TEST_F(UcpEnv, ConvertRefusesToOverwrite) {
  ModelConfig model = TinyGpt();
  TrainingRun run(ConfigFor(model, {1, 1, 1, 1, 0, 1}));
  run.Train(1, 1);
  SaveAll(run, Sub("src"), 1);
  ASSERT_TRUE(ConvertToUcp(Sub("src"), "global_step1", Sub("ucp")).ok());
  EXPECT_EQ(ConvertToUcp(Sub("src"), "global_step1", Sub("ucp")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(UcpEnv, LoadRejectsWrongModel) {
  ModelConfig model = TinyGpt();
  TrainingRun run(ConfigFor(model, {1, 1, 1, 1, 0, 1}));
  run.Train(1, 1);
  SaveAll(run, Sub("src"), 1);
  ASSERT_TRUE(ConvertToUcp(Sub("src"), "global_step1", Sub("ucp")).ok());

  TrainingRun other(ConfigFor(TinyLlama(), {1, 1, 1, 1, 0, 1}));
  Status s = LoadUcpCheckpoint(Sub("ucp"), other.trainer(0));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(UcpEnv, UserSuppliedSpecDrivesConversion) {
  // The "language" path: hand-write the spec text instead of using the generated library.
  ModelConfig model = TinyGpt();
  ParallelConfig src{2, 1, 1, 1, 0, 1};
  TrainingRun source(ConfigFor(model, src));
  source.Train(1, 2);
  SaveAll(source, Sub("src"), 2);

  // TinyGpt: hidden=32, kv=32 -> QKV sections {32,32,32}; ffn=64.
  const char* spec_text = R"(
# hand-written UCP spec for TinyGpt under TP=2
fragment language_model.embedding.word_embeddings.weight dim=0
fragment language_model.encoder.layers.*.self_attention.query_key_value.weight dim=0 sections=32,32,32
fragment language_model.encoder.layers.*.self_attention.query_key_value.bias dim=0 sections=32,32,32
fragment language_model.encoder.layers.*.self_attention.dense.weight dim=1
fragment language_model.encoder.layers.*.mlp.dense_h_to_4h.weight dim=0
fragment language_model.encoder.layers.*.mlp.dense_h_to_4h.bias dim=0
fragment language_model.encoder.layers.*.mlp.dense_4h_to_h.weight dim=1
fragment language_model.output_layer.weight dim=0
replicated *
)";
  Result<PatternLibrary> library = PatternLibrary::FromSpec(spec_text);
  ASSERT_TRUE(library.ok()) << library.status();
  ConvertOptions options;
  options.library = &*library;
  Result<ConvertStats> stats = ConvertToUcp(Sub("src"), "global_step2", Sub("ucp"), options);
  ASSERT_TRUE(stats.ok()) << stats.status();

  TrainingRun target(ConfigFor(model, {1, 1, 1, 1, 0, 1}));
  LoadAll(target, Sub("ucp"));
  auto continued = source.Train(3, 4);
  auto resumed = target.Train(3, 4);
  for (size_t i = 0; i < continued.size(); ++i) {
    EXPECT_NEAR(resumed[i], continued[i], 5e-3);
  }
}

}  // namespace
}  // namespace ucp
