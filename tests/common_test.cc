#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "src/common/bytes.h"
#include "src/common/crc32.h"
#include "src/common/fs.h"
#include "src/common/json.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/thread_pool.h"

namespace ucp {
namespace {

// ---------------- Status / Result ----------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = DataLossError("bad crc");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DATA_LOSS: bad crc");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  UCP_ASSIGN_OR_RETURN(int half, Halve(x));
  UCP_ASSIGN_OR_RETURN(int quarter, Halve(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
}

// ---------------- Strings ----------------

TEST(StringsTest, Split) {
  EXPECT_EQ(StrSplit("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", '.'), (std::vector<std::string>{""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b"}, "/"), "a/b");
  EXPECT_EQ(StrJoin({}, "/"), "");
}

TEST(StringsTest, GlobBasics) {
  EXPECT_TRUE(GlobMatch("*", "anything.at.all"));
  EXPECT_TRUE(GlobMatch("abc", "abc"));
  EXPECT_FALSE(GlobMatch("abc", "abd"));
  EXPECT_TRUE(GlobMatch("a?c", "abc"));
  EXPECT_FALSE(GlobMatch("a?c", "ac"));
}

TEST(StringsTest, GlobOnParameterNames) {
  const char* qkv = "language_model.encoder.layers.3.self_attention.query_key_value.weight";
  EXPECT_TRUE(GlobMatch("language_model.encoder.layers.*.self_attention.query_key_value.weight", qkv));
  EXPECT_TRUE(GlobMatch("*query_key_value*", qkv));
  EXPECT_FALSE(GlobMatch("*query_key_value.bias", qkv));
  EXPECT_TRUE(GlobMatch("*layernorm.weight",
                        "language_model.encoder.layers.0.input_layernorm.weight"));
}

TEST(StringsTest, GlobStarBacktracking) {
  EXPECT_TRUE(GlobMatch("a*b*c", "aXbYbZc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "aXbY"));
  EXPECT_TRUE(GlobMatch("**", ""));
}

TEST(StringsTest, ZeroPad) {
  EXPECT_EQ(ZeroPad(7, 3), "007");
  EXPECT_EQ(ZeroPad(123, 2), "123");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("TP%d.PP%d", 2, 4), "TP2.PP4");
}

// ---------------- RNG ----------------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(CounterRngTest, IndexableAndOrderIndependent) {
  CounterRng rng(42, 1);
  uint64_t v5 = rng.U64At(5);
  uint64_t v100 = rng.U64At(100);
  // Reading in a different order yields the same values (pure function of counter).
  EXPECT_EQ(rng.U64At(100), v100);
  EXPECT_EQ(rng.U64At(5), v5);
}

TEST(CounterRngTest, StreamsDecorrelated) {
  CounterRng a(42, 1);
  CounterRng b(42, 2);
  int same = 0;
  for (uint64_t i = 0; i < 64; ++i) {
    same += a.U64At(i) == b.U64At(i) ? 1 : 0;
  }
  EXPECT_EQ(same, 0);
}

TEST(CounterRngTest, GaussianMoments) {
  CounterRng rng(9, 3);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    float g = rng.GaussianAt(static_cast<uint64_t>(i));
    sum += g;
    sq += static_cast<double>(g) * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

// ---------------- CRC32 ----------------

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (standard check value).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const char* data = "hello universal checkpointing";
  uint32_t crc = Crc32Init();
  crc = Crc32Update(crc, data, 5);
  crc = Crc32Update(crc, data + 5, 24);
  EXPECT_EQ(Crc32Finalize(crc), Crc32(data, 29));
}

TEST(Crc32Test, DetectsFlip) {
  std::string data = "some checkpoint payload";
  uint32_t before = Crc32(data.data(), data.size());
  data[3] ^= 1;
  EXPECT_NE(Crc32(data.data(), data.size()), before);
}

// ---------------- Bytes ----------------

TEST(BytesTest, RoundTrip) {
  ByteWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(1ULL << 40);
  w.PutI64(-12345);
  w.PutF32(3.25f);
  w.PutF64(-1e100);
  w.PutString("atoms");

  ByteReader r(w.buffer().data(), w.size());
  EXPECT_EQ(*r.GetU8(), 7);
  EXPECT_EQ(*r.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.GetU64(), 1ULL << 40);
  EXPECT_EQ(*r.GetI64(), -12345);
  EXPECT_EQ(*r.GetF32(), 3.25f);
  EXPECT_EQ(*r.GetF64(), -1e100);
  EXPECT_EQ(*r.GetString(), "atoms");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncationIsDataLoss) {
  ByteWriter w;
  w.PutU32(5);
  ByteReader r(w.buffer().data(), 2);
  EXPECT_EQ(r.GetU32().status().code(), StatusCode::kDataLoss);
}

TEST(BytesTest, StringLengthBeyondBufferIsDataLoss) {
  ByteWriter w;
  w.PutU32(1000);  // length prefix promising 1000 bytes
  w.PutBytes("abc", 3);
  ByteReader r(w.buffer().data(), w.size());
  EXPECT_EQ(r.GetString().status().code(), StatusCode::kDataLoss);
}

// ---------------- JSON ----------------

TEST(JsonTest, ScalarRoundTrip) {
  Json v = *Json::Parse(R"({"a": 1, "b": -2.5, "c": "x", "d": true, "e": null})");
  EXPECT_EQ(*v.GetInt("a"), 1);
  EXPECT_EQ(*v.GetDouble("b"), -2.5);
  EXPECT_EQ(*v.GetString("c"), "x");
  EXPECT_EQ(*v.GetBool("d"), true);
  EXPECT_TRUE(v.AsObject().at("e").is_null());
}

TEST(JsonTest, NestedDumpParseRoundTrip) {
  JsonObject inner;
  inner["shape"] = Json(JsonArray{Json(64), Json(128)});
  inner["pattern"] = "fragment";
  JsonObject outer;
  outer["param"] = Json(std::move(inner));
  outer["count"] = 3;
  Json original(std::move(outer));

  for (int indent : {0, 2}) {
    Result<Json> reparsed = Json::Parse(original.Dump(indent));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(*reparsed, original);
  }
}

TEST(JsonTest, StringEscapes) {
  Json v = std::string("line1\nline\"2\"\ttab\\slash");
  Result<Json> reparsed = Json::Parse(v.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->AsString(), v.AsString());
}

TEST(JsonTest, UnicodeEscapeParses) {
  Result<Json> v = Json::Parse(R"("Aé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "A\xc3\xa9");
}

TEST(JsonTest, MalformedInputsRejected) {
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} junk").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
}

TEST(JsonTest, LargeIntegersExact) {
  int64_t big = (1LL << 53) - 1;
  Json v = big;
  EXPECT_EQ(Json::Parse(v.Dump())->AsInt(), big);
}

TEST(JsonTest, MissingKeyIsNotFound) {
  Json v = *Json::Parse("{}");
  EXPECT_EQ(v.GetInt("missing").status().code(), StatusCode::kNotFound);
}

TEST(JsonTest, WrongTypeIsInvalidArgument) {
  Json v = *Json::Parse(R"({"a": "text"})");
  EXPECT_EQ(v.GetInt("a").status().code(), StatusCode::kInvalidArgument);
}

TEST(JsonTest, DeterministicKeyOrder) {
  Json a = *Json::Parse(R"({"b": 1, "a": 2})");
  Json b = *Json::Parse(R"({"a": 2, "b": 1})");
  EXPECT_EQ(a.Dump(), b.Dump());
}

// ---------------- Filesystem ----------------

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<std::string> dir = MakeTempDir("ucp_fs_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }
  std::string dir_;
};

TEST_F(FsTest, WriteReadRoundTrip) {
  std::string path = PathJoin(dir_, "file.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "contents").ok());
  EXPECT_EQ(*ReadFileToString(path), "contents");
  EXPECT_EQ(*FileSize(path), 8u);
}

TEST_F(FsTest, AtomicOverwrite) {
  std::string path = PathJoin(dir_, "file.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  EXPECT_EQ(*ReadFileToString(path), "new");
  // No leftover temp files.
  EXPECT_EQ(ListDir(dir_)->size(), 1u);
}

TEST_F(FsTest, MakeDirsNested) {
  std::string nested = PathJoin(dir_, "a/b/c");
  ASSERT_TRUE(MakeDirs(nested).ok());
  EXPECT_TRUE(DirExists(nested));
}

TEST_F(FsTest, ReadMissingIsNotFound) {
  EXPECT_EQ(ReadFileToString(PathJoin(dir_, "absent")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(FsTest, ListDirSorted) {
  ASSERT_TRUE(WriteFileAtomic(PathJoin(dir_, "b"), "1").ok());
  ASSERT_TRUE(WriteFileAtomic(PathJoin(dir_, "a"), "2").ok());
  EXPECT_EQ(*ListDir(dir_), (std::vector<std::string>{"a", "b"}));
}

TEST_F(FsTest, PathJoinEdgeCases) {
  EXPECT_EQ(PathJoin("a", "b"), "a/b");
  EXPECT_EQ(PathJoin("a/", "b"), "a/b");
  EXPECT_EQ(PathJoin("a", "/b"), "a/b");
  EXPECT_EQ(PathJoin("", "b"), "b");
  EXPECT_EQ(PathJoin("a", ""), "a");
}

// ---------------- ThreadPool ----------------

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  int count = 0;
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace ucp
