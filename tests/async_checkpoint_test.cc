// Async checkpoint engine tests: snapshot isolation (a flushed tag holds pre-mutation
// values bit-exactly), both backpressure policies, ordered commits under concurrent
// flushers, keep_last retention, and the GcCheckpoints / CleanStagingDebris helpers the
// engine composes with. The pre_flush_hook makes every "flush still in progress" state
// deterministic — no sleeps stand in for synchronization.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/ckpt/async/engine.h"
#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/ucp/elastic.h"

namespace ucp {
namespace {

TrainerConfig ConfigFor(const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  return cfg;
}

// A manually-released gate for pre_flush_hook: flushers of the listed iteration park until
// Release().
class FlushGate {
 public:
  explicit FlushGate(int64_t gated_iteration) : gated_(gated_iteration) {}

  void operator()(int64_t iteration) {
    if (iteration != gated_) {
      return;
    }
    std::unique_lock<std::mutex> lock(mu_);
    ++waiting_;
    cv_.notify_all();
    cv_.wait(lock, [&] { return open_; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

  // Blocks until a flusher is parked inside the gate.
  void AwaitArrival() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return waiting_ > 0; });
  }

 private:
  const int64_t gated_;
  std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  bool open_ = false;
};

class AsyncCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_async"); }
  void TearDown() override { ASSERT_TRUE(RemoveAll(dir_).ok()); }

  std::string Sub(const std::string& name) { return PathJoin(dir_, name); }

  static void SaveAllSync(TrainingRun& run, const std::string& dir, int64_t iteration) {
    run.Run([&](RankTrainer& t) {
      Status s = SaveDistributedCheckpoint(dir, t, iteration);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }

  static void SaveAsyncAll(TrainingRun& run, AsyncCheckpointEngine& engine,
                           int64_t iteration) {
    run.Run([&](RankTrainer& t) {
      Status s = engine.SaveAsync(t, iteration);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }

  std::string dir_;
};

TEST_F(AsyncCheckpointTest, PeriodicAsyncSavesCommitAndResumeMatchesReference) {
  TrainerConfig cfg = ConfigFor({1, 1, 2, 1, 1, 1});
  TrainingRun ref(cfg);
  std::vector<double> ref_losses = ref.Train(1, 6);

  {
    TrainingRun run(cfg);
    AsyncCheckpointEngine engine(Sub("ckpt"), run.world_size());
    run.Train(1, 4, [&](RankTrainer& t, int64_t it) {
      if (it % 2 == 0) {
        Status s = engine.SaveAsync(t, it);
        UCP_CHECK(s.ok()) << s.ToString();
      }
    });
    ASSERT_TRUE(engine.WaitAll().ok());
    AsyncSaveStats stats = engine.stats();
    EXPECT_EQ(stats.saves_started, 2);
    EXPECT_EQ(stats.commits, 2);
    EXPECT_EQ(stats.drops, 0);
    EXPECT_EQ(stats.failures, 0);
    EXPECT_EQ(stats.last_committed_iteration, 4);
    EXPECT_GT(stats.bytes_flushed, 0);
  }

  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step2"));
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step4"));
  EXPECT_EQ(*ReadLatestTag(Sub("ckpt")), "global_step4");
  EXPECT_EQ(*FindLatestValidTag(Sub("ckpt")), "global_step4");

  // A fresh world resumes from the async-committed tag and reproduces the reference
  // trajectory bit for bit.
  TrainingRun resumed(cfg);
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    UCP_CHECK_EQ(r->iteration, 4);
  });
  std::vector<double> resumed_losses = resumed.Train(5, 6);
  ASSERT_EQ(resumed_losses.size(), 2u);
  EXPECT_DOUBLE_EQ(resumed_losses[0], ref_losses[4]);
  EXPECT_DOUBLE_EQ(resumed_losses[1], ref_losses[5]);
}

TEST_F(AsyncCheckpointTest, SnapshotIsolatesFlushFromLaterTraining) {
  // The acid test of snapshot-then-flush: keep the flush of global_step2 open while the
  // model trains two more iterations, then prove the eventually-committed files are
  // byte-identical to a synchronous save taken at the same point by a twin run.
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});

  TrainingRun sync_run(cfg);
  sync_run.Train(1, 2);
  SaveAllSync(sync_run, Sub("sync"), 2);

  TrainingRun async_run(cfg);
  async_run.Train(1, 2);
  FlushGate gate(2);
  AsyncCheckpointOptions options;
  options.pre_flush_hook = [&gate](int64_t it) { gate(it); };
  AsyncCheckpointEngine engine(Sub("async"), async_run.world_size(), options);
  SaveAsyncAll(async_run, engine, 2);
  gate.AwaitArrival();

  // Mutate everything the snapshot copied: weights, optimizer moments, step counts.
  async_run.Train(3, 4);
  gate.Release();
  ASSERT_TRUE(engine.WaitAll().ok());

  Result<std::vector<std::string>> sync_files = ListDir(Sub("sync/global_step2"));
  ASSERT_TRUE(sync_files.ok()) << sync_files.status();
  ASSERT_FALSE(sync_files->empty());
  for (const std::string& name : *sync_files) {
    Result<std::string> want = ReadFileToString(PathJoin(Sub("sync/global_step2"), name));
    Result<std::string> got = ReadFileToString(PathJoin(Sub("async/global_step2"), name));
    ASSERT_TRUE(want.ok()) << name << ": " << want.status();
    ASSERT_TRUE(got.ok()) << name << ": " << got.status();
    EXPECT_TRUE(*want == *got) << name << " differs between sync and async save";
  }
}

TEST_F(AsyncCheckpointTest, BlockBackpressureStallsSaveUntilSlotFrees) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);

  FlushGate gate(2);
  AsyncCheckpointOptions options;
  options.max_in_flight = 1;
  options.backpressure = AsyncCheckpointOptions::Backpressure::kBlock;
  options.pre_flush_hook = [&gate](int64_t it) { gate(it); };
  AsyncCheckpointEngine engine(Sub("ckpt"), run.world_size(), options);

  SaveAsyncAll(run, engine, 2);  // occupies the single in-flight slot
  gate.AwaitArrival();
  run.Train(3, 4);

  std::atomic<bool> second_returned{false};
  std::thread second([&] {
    Status s = engine.SaveAsync(run.trainer(0), 4);
    UCP_CHECK(s.ok()) << s.ToString();
    second_returned.store(true);
  });
  // The blocked save must still be parked after a generous grace period...
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(second_returned.load());

  // ...and must complete once the first flush drains.
  gate.Release();
  second.join();
  EXPECT_TRUE(second_returned.load());
  ASSERT_TRUE(engine.WaitAll().ok());

  AsyncSaveStats stats = engine.stats();
  EXPECT_EQ(stats.commits, 2);
  EXPECT_EQ(stats.drops, 0);
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step2"));
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step4"));
  EXPECT_EQ(*ReadLatestTag(Sub("ckpt")), "global_step4");
}

TEST_F(AsyncCheckpointTest, DropOldestCancelsStalledSaveWithoutBlocking) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);

  FlushGate gate(2);
  AsyncCheckpointOptions options;
  options.max_in_flight = 1;
  options.backpressure = AsyncCheckpointOptions::Backpressure::kDropOldest;
  options.pre_flush_hook = [&gate](int64_t it) { gate(it); };
  AsyncCheckpointEngine engine(Sub("ckpt"), run.world_size(), options);

  SaveAsyncAll(run, engine, 2);
  gate.AwaitArrival();
  run.Train(3, 4);
  SaveAsyncAll(run, engine, 4);  // evicts the stalled global_step2 save, returns at once
  gate.Release();
  ASSERT_TRUE(engine.WaitAll().ok());  // a drop is a policy outcome, not an engine error

  EXPECT_EQ(engine.WaitForIteration(2).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(engine.WaitForIteration(4).ok());
  EXPECT_EQ(engine.WaitForIteration(99).code(), StatusCode::kNotFound);

  AsyncSaveStats stats = engine.stats();
  EXPECT_EQ(stats.drops, 1);
  EXPECT_EQ(stats.commits, 1);
  EXPECT_EQ(stats.failures, 0);
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step2")));
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step2.staging")));
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step4"));
  EXPECT_EQ(*ReadLatestTag(Sub("ckpt")), "global_step4");
}

TEST_F(AsyncCheckpointTest, ConcurrentFlushesCommitInSaveOrder) {
  // Two flusher threads, the older save held open: the younger save finishes its shards
  // first but must wait its turn, so `latest` ends at the younger tag — a wrong-order
  // commit would leave `latest` pointing at global_step2.
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);

  FlushGate gate(2);
  AsyncCheckpointOptions options;
  options.flush_threads = 2;
  options.max_in_flight = 2;
  options.pre_flush_hook = [&gate](int64_t it) { gate(it); };
  AsyncCheckpointEngine engine(Sub("ckpt"), run.world_size(), options);

  SaveAsyncAll(run, engine, 2);
  gate.AwaitArrival();
  run.Train(3, 4);
  SaveAsyncAll(run, engine, 4);
  gate.Release();
  ASSERT_TRUE(engine.WaitAll().ok());

  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step2"));
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step4"));
  EXPECT_EQ(*ReadLatestTag(Sub("ckpt")), "global_step4");
  EXPECT_EQ(engine.stats().commits, 2);
}

TEST_F(AsyncCheckpointTest, KeepLastRetiresOldTagsAfterEachCommit) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);

  AsyncCheckpointOptions options;
  options.keep_last = 2;
  AsyncCheckpointEngine engine(Sub("ckpt"), run.world_size(), options);
  for (int64_t it = 2; it <= 8; it += 2) {
    run.Train(it - 1, it);
    SaveAsyncAll(run, engine, it);
  }
  ASSERT_TRUE(engine.WaitAll().ok());

  EXPECT_FALSE(DirExists(Sub("ckpt/global_step2")));
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step4")));
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step6"));
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step8"));
  EXPECT_EQ(*ReadLatestTag(Sub("ckpt")), "global_step8");
  EXPECT_EQ(engine.stats().commits, 4);
}

TEST_F(AsyncCheckpointTest, WaitForIterationReportsPerSaveOutcomes) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);

  AsyncCheckpointEngine engine(Sub("ckpt"), run.world_size());
  SaveAsyncAll(run, engine, 2);
  EXPECT_TRUE(engine.WaitForIteration(2).ok());
  EXPECT_EQ(engine.WaitForIteration(3).code(), StatusCode::kNotFound);
  EXPECT_TRUE(engine.WaitAll().ok());
}

TEST_F(AsyncCheckpointTest, GcProtectsLatestUncommittedTagsAndStagingDebris) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  for (int64_t it = 2; it <= 6; it += 2) {
    run.Train(it - 1, it);
    SaveAllSync(run, Sub("ckpt"), it);
  }
  // global_step4 becomes an uncommitted (crashed-save) tag; give step2 a cached UCP dir and
  // plant staging debris — GC must leave the crash evidence and debris alone.
  ASSERT_TRUE(RemoveAll(Sub("ckpt/global_step4/complete")).ok());
  ASSERT_TRUE(MakeDirs(Sub("ckpt/global_step2.ucp")).ok());
  ASSERT_TRUE(MakeDirs(Sub("ckpt/global_step5.staging")).ok());
  ASSERT_TRUE(WriteFileAtomic(Sub("ckpt/global_step5.staging/partial"), "x").ok());

  Result<GcReport> dry = GcCheckpoints(Sub("ckpt"), 1, /*dry_run=*/true);
  ASSERT_TRUE(dry.ok()) << dry.status();
  EXPECT_EQ(dry->removed, std::vector<std::string>{"global_step2"});
  EXPECT_EQ(dry->kept, std::vector<std::string>{"global_step6"});
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step2")));  // dry run touches nothing

  Result<GcReport> gc = GcCheckpoints(Sub("ckpt"), 1);
  ASSERT_TRUE(gc.ok()) << gc.status();
  EXPECT_EQ(gc->removed, std::vector<std::string>{"global_step2"});
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step2")));
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step2.ucp")));  // the cache follows its tag
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step4")));       // uncommitted: not GC's business
  EXPECT_TRUE(FileExists(Sub("ckpt/global_step5.staging/partial")));
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step6"));
}

TEST_F(AsyncCheckpointTest, GcNeverDeletesWhatLatestNamesEvenWhenStale) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  for (int64_t it = 2; it <= 6; it += 2) {
    run.Train(it - 1, it);
    SaveAllSync(run, Sub("ckpt"), it);
  }
  // Roll `latest` back by hand (an operator rollback, or a crash that quarantined newer
  // tags). Retention must keep both the pointer's target and the newest keep_last tags.
  ASSERT_TRUE(WriteFileAtomic(Sub("ckpt/latest"), "global_step2").ok());

  Result<GcReport> gc = GcCheckpoints(Sub("ckpt"), 1);
  ASSERT_TRUE(gc.ok()) << gc.status();
  EXPECT_EQ(gc->removed, std::vector<std::string>{"global_step4"});
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step2")));  // latest's target survives
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step6")));  // newest committed survives
}

TEST_F(AsyncCheckpointTest, GcNeverDeletesTheResumeFrontierWhenNewerTagsAreDamaged) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  for (int64_t it = 2; it <= 6; it += 2) {
    run.Train(it - 1, it);
    SaveAllSync(run, Sub("ckpt"), it);
  }
  // Tear the metadata of both newer tags (committed, but unreadable — what a torn write
  // that raced the commit marker leaves behind). global_step2 is now the resume frontier.
  ASSERT_TRUE(WriteFileAtomic(Sub("ckpt/global_step4/checkpoint_meta.json"), "{\"trunc").ok());
  ASSERT_TRUE(WriteFileAtomic(Sub("ckpt/global_step6/checkpoint_meta.json"), "{\"trunc").ok());
  ASSERT_EQ(*FindLatestValidTag(Sub("ckpt")), "global_step2");

  // keep_last=1 would keep only damaged global_step6 by recency; the frontier must be
  // pinned anyway or the job has nothing left to resume from.
  Result<GcReport> gc = GcCheckpoints(Sub("ckpt"), 1);
  ASSERT_TRUE(gc.ok()) << gc.status();
  EXPECT_EQ(gc->removed, std::vector<std::string>{"global_step4"});
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step2")));  // the frontier survives
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step6")));  // newest committed survives
  EXPECT_EQ(*FindLatestValidTag(Sub("ckpt")), "global_step2");
}

TEST_F(AsyncCheckpointTest, CleanStagingDebrisSweepsOnlyStagingDirectories) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);
  SaveAllSync(run, Sub("ckpt"), 2);
  ASSERT_TRUE(MakeDirs(Sub("ckpt/global_step4.staging")).ok());
  ASSERT_TRUE(WriteFileAtomic(Sub("ckpt/global_step4.staging/shard"), "junk").ok());

  Result<int> swept = CleanStagingDebris(Sub("ckpt"));
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_EQ(*swept, 1);
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step4.staging")));
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step2"));

  EXPECT_EQ(*CleanStagingDebris(Sub("ckpt")), 0);  // idempotent on a clean dir
}

}  // namespace
}  // namespace ucp
