#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "src/comm/comm.h"

namespace ucp {
namespace {

// Runs `body(rank, group)` on `n` threads sharing one group over ranks [0, n).
void RunGroup(int n, const std::function<void(int, ProcessGroup&)>& body) {
  World world(n);
  std::vector<int> ranks(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ranks[static_cast<size_t>(i)] = i;
  }
  auto state = world.CreateGroup(ranks);
  RunSpmd(n, [&](int rank) {
    ProcessGroup group(state, rank);
    body(rank, group);
  });
}

TEST(CommTest, AllReduceSumAllRanksSeeTotal) {
  const int n = 4;
  std::vector<Tensor> results(n);
  RunGroup(n, [&](int rank, ProcessGroup& group) {
    Tensor t = Tensor::Full({8}, static_cast<float>(rank + 1));
    group.AllReduceSum(t);
    results[static_cast<size_t>(rank)] = t;
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(Tensor::BitEqual(results[static_cast<size_t>(r)], Tensor::Full({8}, 10.0f)));
  }
}

TEST(CommTest, AllReduceDeterministicAcrossRepeats) {
  // Summation order is group order, not arrival order: repeated runs are bit-identical even
  // for values where fp addition is not associative.
  const int n = 6;
  auto run_once = [&] {
    std::vector<Tensor> results(n);
    RunGroup(n, [&](int rank, ProcessGroup& group) {
      Tensor t = Tensor::Full({4}, 0.1f * static_cast<float>(rank) + 1e-7f);
      for (int i = 0; i < 50; ++i) {
        Tensor copy = t.Clone();
        group.AllReduceSum(copy);
        if (i == 49) {
          results[static_cast<size_t>(rank)] = copy;
        }
      }
    });
    return results;
  };
  auto a = run_once();
  auto b = run_once();
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(Tensor::BitEqual(a[static_cast<size_t>(r)], b[static_cast<size_t>(r)]));
    EXPECT_TRUE(Tensor::BitEqual(a[0], a[static_cast<size_t>(r)]));
  }
}

TEST(CommTest, AllReduceMax) {
  const int n = 3;
  std::vector<float> results(n);
  RunGroup(n, [&](int rank, ProcessGroup& group) {
    Tensor t = Tensor::Full({1}, rank == 1 ? 9.0f : -1.0f);
    group.AllReduceMax(t);
    results[static_cast<size_t>(rank)] = t.at(0);
  });
  for (float r : results) {
    EXPECT_EQ(r, 9.0f);
  }
}

TEST(CommTest, ScalarReductions) {
  const int n = 5;
  std::vector<double> sums(n);
  std::vector<double> maxes(n);
  RunGroup(n, [&](int rank, ProcessGroup& group) {
    sums[static_cast<size_t>(rank)] = group.AllReduceSumScalar(rank);
    maxes[static_cast<size_t>(rank)] = group.AllReduceMaxScalar(rank * 1.5);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(sums[static_cast<size_t>(r)], 10.0);
    EXPECT_EQ(maxes[static_cast<size_t>(r)], 6.0);
  }
}

TEST(CommTest, AllGatherTensorsRaggedShapes) {
  // ZeRO-3 gathers shards whose sizes differ across ranks.
  const int n = 3;
  std::vector<std::vector<Tensor>> results(n);
  RunGroup(n, [&](int rank, ProcessGroup& group) {
    Tensor t = Tensor::Full({rank + 1}, static_cast<float>(rank));
    results[static_cast<size_t>(rank)] = group.AllGatherTensors(t);
  });
  for (int r = 0; r < n; ++r) {
    ASSERT_EQ(results[static_cast<size_t>(r)].size(), 3u);
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(results[static_cast<size_t>(r)][static_cast<size_t>(s)].numel(), s + 1);
      EXPECT_EQ(results[static_cast<size_t>(r)][static_cast<size_t>(s)].at(0),
                static_cast<float>(s));
    }
  }
}

TEST(CommTest, AllGatherConcatOrderedByRank) {
  const int n = 4;
  std::vector<Tensor> results(n);
  RunGroup(n, [&](int rank, ProcessGroup& group) {
    Tensor t = Tensor::Full({1, 2}, static_cast<float>(rank));
    results[static_cast<size_t>(rank)] = group.AllGatherConcat(t, 0);
  });
  for (int r = 0; r < n; ++r) {
    const Tensor& g = results[static_cast<size_t>(r)];
    EXPECT_EQ(g.shape(), (Shape{4, 2}));
    for (int s = 0; s < n; ++s) {
      EXPECT_EQ(g.at(s * 2), static_cast<float>(s));
    }
  }
}

TEST(CommTest, ReduceScatterSumGivesOwnedSlice) {
  const int n = 2;
  std::vector<Tensor> results(n);
  RunGroup(n, [&](int rank, ProcessGroup& group) {
    // rank 0 contributes [0,1,2,3], rank 1 contributes [10,11,12,13].
    Tensor full = Tensor::Zeros({4});
    for (int i = 0; i < 4; ++i) {
      full.at(i) = static_cast<float>(rank * 10 + i);
    }
    Tensor shard = Tensor::Zeros({2});
    group.ReduceScatterSum(full, shard);
    results[static_cast<size_t>(rank)] = shard;
  });
  EXPECT_EQ(results[0].at(0), 10.0f);  // 0 + 10
  EXPECT_EQ(results[0].at(1), 12.0f);  // 1 + 11
  EXPECT_EQ(results[1].at(0), 14.0f);  // 2 + 12
  EXPECT_EQ(results[1].at(1), 16.0f);  // 3 + 13
}

TEST(CommTest, BroadcastFromNonZeroRoot) {
  const int n = 3;
  std::vector<Tensor> results(n);
  RunGroup(n, [&](int rank, ProcessGroup& group) {
    Tensor t = Tensor::Full({4}, static_cast<float>(rank));
    group.Broadcast(t, /*root_index=*/2);
    results[static_cast<size_t>(rank)] = t;
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(Tensor::BitEqual(results[static_cast<size_t>(r)], Tensor::Full({4}, 2.0f)));
  }
}

TEST(CommTest, BackToBackCollectivesDoNotInterleave) {
  // A rank finishing op k must not corrupt peers still inside op k; generations protect the
  // rendezvous. Run many rounds with asymmetric work to shake out races.
  const int n = 4;
  RunGroup(n, [&](int rank, ProcessGroup& group) {
    for (int round = 0; round < 200; ++round) {
      Tensor t = Tensor::Full({4}, static_cast<float>(rank + round));
      group.AllReduceSum(t);
      float expected = static_cast<float>(n * round + n * (n - 1) / 2);
      UCP_CHECK_EQ(t.at(0), expected) << "round " << round << " rank " << rank;
    }
  });
}

TEST(CommTest, SubgroupsOperateIndependently) {
  World world(4);
  auto even = world.CreateGroup({0, 2});
  auto odd = world.CreateGroup({1, 3});
  std::vector<double> results(4);
  RunSpmd(4, [&](int rank) {
    ProcessGroup group(rank % 2 == 0 ? even : odd, rank);
    results[static_cast<size_t>(rank)] = group.AllReduceSumScalar(rank);
  });
  EXPECT_EQ(results[0], 2.0);
  EXPECT_EQ(results[2], 2.0);
  EXPECT_EQ(results[1], 4.0);
  EXPECT_EQ(results[3], 4.0);
}

TEST(CommTest, SizeOneGroupIsIdentity) {
  World world(1);
  auto state = world.CreateGroup({0});
  ProcessGroup group(state, 0);
  Tensor t = Tensor::Full({3}, 7.0f);
  group.AllReduceSum(t);
  EXPECT_TRUE(Tensor::BitEqual(t, Tensor::Full({3}, 7.0f)));
  EXPECT_EQ(group.AllReduceSumScalar(5.0), 5.0);
}

TEST(CommTest, SendRecvFifoOrder) {
  World world(2);
  std::vector<float> received;
  RunSpmd(2, [&](int rank) {
    if (rank == 0) {
      for (int i = 0; i < 5; ++i) {
        world.Send(0, 1, Tensor::Full({1}, static_cast<float>(i)));
      }
    } else {
      for (int i = 0; i < 5; ++i) {
        received.push_back(world.Recv(0, 1).at(0));
      }
    }
  });
  EXPECT_EQ(received, (std::vector<float>{0, 1, 2, 3, 4}));
}

TEST(CommTest, SendCopiesPayload) {
  World world(2);
  RunSpmd(2, [&](int rank) {
    if (rank == 0) {
      Tensor t = Tensor::Full({2}, 1.0f);
      world.Send(0, 1, t);
      t.Fill_(99.0f);  // mutation after send must not affect the receiver
    } else {
      Tensor got = world.Recv(0, 1);
      UCP_CHECK_EQ(got.at(0), 1.0f);
    }
  });
}

TEST(CommTest, BidirectionalChannelsDistinct) {
  World world(2);
  RunSpmd(2, [&](int rank) {
    int other = 1 - rank;
    world.Send(rank, other, Tensor::Full({1}, static_cast<float>(rank)));
    Tensor got = world.Recv(other, rank);
    UCP_CHECK_EQ(got.at(0), static_cast<float>(other));
  });
}

TEST(CommTest, BarrierSynchronizes) {
  const int n = 4;
  std::atomic<int> arrived{0};
  RunGroup(n, [&](int, ProcessGroup& group) {
    arrived.fetch_add(1);
    group.Barrier();
    UCP_CHECK_EQ(arrived.load(), n);
  });
}

}  // namespace
}  // namespace ucp
