// ZeRO mechanics: flat layout + padding invariants, parameter views, and the central
// equivalence property — training is (bit-)identical across ZeRO stages 0/1/2/3 given the
// same model, data, and DP degree.

#include <gtest/gtest.h>

#include "src/runtime/trainer.h"

namespace ucp {
namespace {

TrainerConfig BaseConfig(int zero_stage, int dp) {
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = {1, 1, dp, 1, zero_stage, 1};
  cfg.global_batch = 4;
  cfg.lr.warmup_iters = 2;
  cfg.lr.decay_iters = 20;
  return cfg;
}

TEST(ZeroLayoutTest, SegmentsContiguousAndOrdered) {
  TrainingRun run(BaseConfig(1, 2));
  const FlatLayout& layout = run.trainer(0).optimizer().layout();
  int64_t offset = 0;
  for (const FlatSegment& seg : layout.segments) {
    EXPECT_EQ(seg.offset, offset) << seg.name;
    EXPECT_EQ(seg.numel, ShapeNumel(seg.shape));
    offset += seg.numel;
  }
  EXPECT_EQ(layout.total, offset);
  EXPECT_GE(layout.padded_total, layout.total);
  EXPECT_EQ(layout.padded_total % (2 * kZeroAlignment), 0);
  EXPECT_EQ(layout.partition_size * 2, layout.padded_total);
}

TEST(ZeroLayoutTest, JsonRoundTrip) {
  TrainingRun run(BaseConfig(2, 2));
  const FlatLayout& layout = run.trainer(0).optimizer().layout();
  Result<FlatLayout> back = FlatLayout::FromJson(layout.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->total, layout.total);
  EXPECT_EQ(back->padded_total, layout.padded_total);
  ASSERT_EQ(back->segments.size(), layout.segments.size());
  for (size_t i = 0; i < layout.segments.size(); ++i) {
    EXPECT_EQ(back->segments[i].name, layout.segments[i].name);
    EXPECT_EQ(back->segments[i].offset, layout.segments[i].offset);
    EXPECT_EQ(back->segments[i].shape, layout.segments[i].shape);
    EXPECT_EQ(back->segments[i].decay, layout.segments[i].decay);
    EXPECT_EQ(back->segments[i].norm_counts, layout.segments[i].norm_counts);
  }
}

TEST(ZeroTest, ParamsAreViewsIntoFlatBuffer) {
  TrainingRun run(BaseConfig(0, 1));
  RankTrainer& t = run.trainer(0);
  const auto& params = t.model().store().params();
  ASSERT_GE(params.size(), 2u);
  // All parameter values share one storage (the flat buffer).
  EXPECT_TRUE(params[0]->value.SharesStorageWith(params[1]->value));
  EXPECT_TRUE(params[0]->grad.SharesStorageWith(params[1]->grad));
  EXPECT_FALSE(params[0]->value.SharesStorageWith(params[0]->grad));
}

TEST(ZeroTest, StatePartitionSizes) {
  for (int stage : {0, 1, 2, 3}) {
    TrainingRun run(BaseConfig(stage, 2));
    const ZeroOptimizer& opt = run.trainer(0).optimizer();
    const FlatLayout& layout = opt.layout();
    int64_t expected = stage == 0 ? layout.padded_total : layout.partition_size;
    EXPECT_EQ(opt.state_numel(), expected) << "stage " << stage;
    EXPECT_EQ(run.trainer(1).optimizer().owned_offset(),
              stage == 0 ? 0 : layout.partition_size);
  }
}

TEST(ZeroTest, MasterMatchesInitialValues) {
  TrainingRun run(BaseConfig(1, 2));
  // Rank 0's partition of the master must equal the first partition_size elements of the
  // published values (fp32 mode: master == value).
  RankTrainer& t = run.trainer(0);
  Tensor master = t.optimizer().MasterState();
  Tensor values = t.optimizer().flat_value().Narrow(0, 0, master.numel());
  EXPECT_TRUE(Tensor::BitEqual(master, values));
}

// The flagship ZeRO property: every stage computes the same training trajectory.
TEST(ZeroTest, StagesProduceIdenticalLosses) {
  std::vector<std::vector<double>> losses;
  for (int stage : {0, 1, 2, 3}) {
    TrainingRun run(BaseConfig(stage, 2));
    losses.push_back(run.Train(1, 8));
  }
  for (size_t stage = 1; stage < losses.size(); ++stage) {
    for (size_t it = 0; it < losses[0].size(); ++it) {
      // Stages 0/1 all-reduce full grads; 2/3 reduce-scatter. Reduction order matches
      // (rank-ordered in both), so trajectories are bit-identical.
      EXPECT_DOUBLE_EQ(losses[stage][it], losses[0][it])
          << "stage " << stage << " iter " << it;
    }
  }
}

TEST(ZeroTest, DpDegreeInvariance) {
  // dp=1 vs dp=2: same global batch, gradients averaged -> same trajectory up to fp
  // reduction order.
  TrainingRun run1(BaseConfig(0, 1));
  TrainingRun run2(BaseConfig(1, 2));
  auto l1 = run1.Train(1, 8);
  auto l2 = run2.Train(1, 8);
  for (size_t i = 0; i < l1.size(); ++i) {
    // Reduction-order differences compound across iterations; 1e-3 bounds 8 steps.
    EXPECT_NEAR(l1[i], l2[i], 1e-3) << "iter " << i;
  }
}

TEST(ZeroTest, LoadStateRoundTrip) {
  TrainingRun run(BaseConfig(2, 2));
  run.Train(1, 3);
  // Snapshot, train, restore, retrain: trajectories must match bit-for-bit.
  std::vector<Tensor> master(2);
  std::vector<Tensor> m(2);
  std::vector<Tensor> v(2);
  std::vector<int64_t> steps(2);
  run.Run([&](RankTrainer& t) {
    master[static_cast<size_t>(t.rank())] = t.optimizer().MasterState();
    m[static_cast<size_t>(t.rank())] = t.optimizer().ExpAvgState();
    v[static_cast<size_t>(t.rank())] = t.optimizer().ExpAvgSqState();
    steps[static_cast<size_t>(t.rank())] = t.optimizer().steps_taken();
  });
  auto first = run.Train(4, 6);
  run.Run([&](RankTrainer& t) {
    size_t r = static_cast<size_t>(t.rank());
    Status s = t.optimizer().LoadState(master[r], m[r], v[r], steps[r]);
    UCP_CHECK(s.ok()) << s.ToString();
  });
  auto second = run.Train(4, 6);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]);
  }
}

TEST(ZeroTest, LoadStateSizeMismatchRejected) {
  TrainingRun run(BaseConfig(1, 2));
  RankTrainer& t = run.trainer(0);
  Tensor wrong = Tensor::Zeros({t.optimizer().state_numel() + 4});
  Status s = t.optimizer().LoadState(wrong, wrong, wrong, 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ZeroTest, GradClipEngagesOnLargeGradients) {
  // With an absurdly small clip threshold, updates shrink; the loss trajectory must differ
  // from the unclipped run (sanity that the clip path is live).
  TrainerConfig a = BaseConfig(0, 1);
  a.adam.grad_clip = 1.0f;
  TrainerConfig b = BaseConfig(0, 1);
  b.adam.grad_clip = 1e-3f;
  auto la = TrainingRun(a).Train(1, 5);
  auto lb = TrainingRun(b).Train(1, 5);
  EXPECT_NE(la.back(), lb.back());
}

TEST(ZeroTest, MptBf16PublishesRoundedValues) {
  TrainerConfig cfg = BaseConfig(1, 2);
  cfg.compute_dtype = DType::kBF16;
  TrainingRun run(cfg);
  run.Train(1, 2);
  RankTrainer& t = run.trainer(0);
  const Tensor& values = t.optimizer().flat_value();
  Tensor rounded = RoundThrough(values, DType::kBF16);
  EXPECT_TRUE(Tensor::BitEqual(values, rounded));
  // Masters stay full precision (not all-bf16 — at least one element must differ from its
  // rounded form after an Adam step).
  Tensor master = t.optimizer().MasterState();
  Tensor master_rounded = RoundThrough(master, DType::kBF16);
  EXPECT_FALSE(Tensor::BitEqual(master, master_rounded));
}

TEST(AdamTest, LrScheduleShape) {
  LrSchedule lr;
  lr.max_lr = 1.0f;
  lr.min_lr = 0.1f;
  lr.warmup_iters = 10;
  lr.decay_iters = 100;
  EXPECT_FLOAT_EQ(lr.LrAt(5), 0.5f);
  EXPECT_FLOAT_EQ(lr.LrAt(10), 1.0f);
  EXPECT_GT(lr.LrAt(50), lr.LrAt(90));
  EXPECT_FLOAT_EQ(lr.LrAt(100), 0.1f);
  EXPECT_FLOAT_EQ(lr.LrAt(500), 0.1f);
}

TEST(AdamTest, SingleStepMatchesClosedForm) {
  AdamConfig config;
  config.weight_decay = 0.0f;
  float w = 1.0f;
  float g = 0.5f;
  float m = 0.0f;
  float v = 0.0f;
  AdamUpdate(&w, &g, &m, &v, 1, /*step=*/1, /*lr=*/0.1f, config, /*decay=*/false, 1.0f);
  // After bias correction at step 1, m_hat = g and v_hat = g^2, so dw = -lr * g/|g| ~ -lr.
  EXPECT_NEAR(w, 1.0f - 0.1f, 1e-5f);
}

TEST(AdamTest, DecoupledWeightDecayShrinksWeights) {
  AdamConfig config;
  config.weight_decay = 0.5f;
  float w = 2.0f;
  float g = 0.0f;
  float m = 0.0f;
  float v = 0.0f;
  AdamUpdate(&w, &g, &m, &v, 1, 1, 0.1f, config, /*decay=*/true, 1.0f);
  EXPECT_NEAR(w, 2.0f - 0.1f * 0.5f * 2.0f, 1e-6f);
}

}  // namespace
}  // namespace ucp
