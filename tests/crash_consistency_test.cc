// Crash-consistency matrix: kill the save/convert protocol at exact points with the
// deterministic fault injector, then prove resume falls back to the newest committed tag
// with bitwise-identical training state versus an uninterrupted run. This is the test
// harness the commit protocol (staging dir -> fsync -> rename -> `complete` marker) exists
// to pass.

#include <gtest/gtest.h>

#include "src/ckpt/async/engine.h"
#include "src/ckpt/checkpoint.h"
#include "src/ckpt/foreign.h"
#include "src/common/crc32.h"
#include "src/common/fault_fs.h"
#include "src/common/fs.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/atom.h"
#include "src/ucp/converter.h"
#include "src/ucp/elastic.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

TrainerConfig ConfigFor(const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  return cfg;
}

class CrashConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_crash"); }
  void TearDown() override {
    DisarmFaults();  // never leak an armed plan into another test
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  std::string Sub(const std::string& name) { return PathJoin(dir_, name); }

  static void SaveAll(TrainingRun& run, const std::string& dir, int64_t iteration) {
    run.Run([&](RankTrainer& t) {
      Status s = SaveDistributedCheckpoint(dir, t, iteration);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }

  std::string dir_;
};

// One entry of the injection matrix: a fault armed during the save of global_step4, after a
// clean save of global_step2.
struct CrashCase {
  const char* label;
  FaultPlan plan;
  bool save_fails;          // fail-stop faults surface at save time...
  bool tag4_dir_remains;    // ...and may leave an uncommitted global_step4 behind
  bool check_find_latest;   // FindLatestValidTag detects marker/meta damage (not torn data)
};

class CrashMatrixTest : public CrashConsistencyTest,
                        public ::testing::WithParamInterface<CrashCase> {};

TEST_P(CrashMatrixTest, ResumeFallsBackToLastValidTagBitExact) {
  const CrashCase& c = GetParam();
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});

  // Uninterrupted reference trajectory.
  TrainingRun ref(cfg);
  std::vector<double> ref_losses = ref.Train(1, 6);

  // Victim: commit global_step2 cleanly, then crash somewhere in the global_step4 save.
  TrainingRun victim(cfg);
  victim.Train(1, 2);
  SaveAll(victim, Sub("ckpt"), 2);
  victim.Train(3, 4);
  Status save = OkStatus();
  {
    ScopedFault fault(c.plan);
    victim.Run([&](RankTrainer& t) { save = SaveDistributedCheckpoint(Sub("ckpt"), t, 4); });
    EXPECT_TRUE(FaultFired()) << c.label << ": plan never matched an operation";
  }
  EXPECT_EQ(save.ok(), !c.save_fails) << c.label << ": " << save.ToString();
  EXPECT_EQ(DirExists(Sub("ckpt/global_step4")), c.tag4_dir_remains) << c.label;
  if (c.check_find_latest) {
    Result<std::string> valid = FindLatestValidTag(Sub("ckpt"));
    ASSERT_TRUE(valid.ok()) << valid.status();
    EXPECT_EQ(*valid, "global_step2") << c.label;
  }

  // Resume: the damaged or uncommitted global_step4 must be skipped in favour of
  // global_step2, and the continued trajectory must equal the reference bit for bit.
  TrainingRun resumed(cfg);
  ResumeReport report;
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    report = *r;
  });
  EXPECT_EQ(report.tag, "global_step2") << c.label;
  EXPECT_EQ(report.iteration, 2) << c.label;
  EXPECT_EQ(report.path, ResumeReport::Path::kNative) << c.label;

  std::vector<double> resumed_losses = resumed.Train(3, 6);
  ASSERT_EQ(resumed_losses.size(), 4u);
  for (size_t i = 0; i < resumed_losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed_losses[i], ref_losses[i + 2])
        << c.label << " diverged at iteration " << 3 + i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    InjectionMatrix, CrashMatrixTest,
    ::testing::Values(
        // Killed at the first file rename inside the staging dir: nothing of global_step4
        // survives (the abort path clears staging), `latest` still names global_step2.
        CrashCase{"kill_before_staging_rename",
                  {FaultPlan::Kind::kFailStop, FsOp::kRename, 1, "global_step4", 0},
                  /*save_fails=*/true, /*tag4_dir_remains=*/false,
                  /*check_find_latest=*/true},
        // Killed after the staging dir was renamed to global_step4 but before the
        // `complete` marker: the tag dir exists yet no reader trusts it.
        CrashCase{"kill_before_complete_marker",
                  {FaultPlan::Kind::kFailStop, FsOp::kWrite, 1, "complete", 0},
                  /*save_fails=*/true, /*tag4_dir_remains=*/true,
                  /*check_find_latest=*/true},
        // Torn write: the optimizer shard persists as a prefix under its final name and the
        // save commits "successfully" — only the CRC knows. Resume must fall back a tag.
        CrashCase{"torn_optimizer_write",
                  {FaultPlan::Kind::kTornWrite, FsOp::kWrite, 1, "optim_states",
                   0xDEADBEEFu},
                  /*save_fails=*/false, /*tag4_dir_remains=*/true,
                  /*check_find_latest=*/false},
        // Bit rot: one seed-chosen bit of the committed shard flips after the rename.
        CrashCase{"bitrot_optimizer_payload",
                  {FaultPlan::Kind::kBitRot, FsOp::kWrite, 1, "optim_states", 12345},
                  /*save_fails=*/false, /*tag4_dir_remains=*/true,
                  /*check_find_latest=*/false}),
    [](const ::testing::TestParamInfo<CrashCase>& info) { return info.param.label; });

TEST_F(CrashConsistencyTest, SaveRetriesCleanlyOverCrashDebris) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);
  run.Train(3, 4);

  // Crash between the tag rename and the marker, leaving an uncommitted global_step4.
  Status save = OkStatus();
  {
    ScopedFault fault({FaultPlan::Kind::kFailStop, FsOp::kWrite, 1, "complete", 0});
    run.Run([&](RankTrainer& t) { save = SaveDistributedCheckpoint(Sub("ckpt"), t, 4); });
  }
  ASSERT_FALSE(save.ok());
  ASSERT_TRUE(DirExists(Sub("ckpt/global_step4")));
  EXPECT_FALSE(IsTagComplete(Sub("ckpt"), "global_step4"));
  EXPECT_EQ(ReadCheckpointMeta(Sub("ckpt"), "global_step4").status().code(),
            StatusCode::kDataLoss);

  // The retry replaces the debris and commits.
  SaveAll(run, Sub("ckpt"), 4);
  EXPECT_TRUE(IsTagComplete(Sub("ckpt"), "global_step4"));
  EXPECT_EQ(*ReadLatestTag(Sub("ckpt")), "global_step4");
  EXPECT_EQ(*FindLatestValidTag(Sub("ckpt")), "global_step4");

  TrainingRun resumed(cfg);
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    UCP_CHECK_EQ(r->iteration, 4);
  });
}

TEST_F(CrashConsistencyTest, MultiRankSaveAbortsOnEveryRankWhenOneShardFails) {
  TrainerConfig cfg = ConfigFor({1, 1, 2, 1, 1, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);
  run.Train(3, 4);

  // One rank's optimizer-shard write dies; the commit must not happen and *both* ranks must
  // report failure (the agreement all-reduce doubles as the barrier keeping them aligned).
  std::vector<Status> statuses(2);
  {
    ScopedFault fault({FaultPlan::Kind::kFailStop, FsOp::kWrite, 1, "optim_states", 0});
    run.Run([&](RankTrainer& t) {
      statuses[static_cast<size_t>(t.rank())] =
          SaveDistributedCheckpoint(Sub("ckpt"), t, 4);
    });
    EXPECT_TRUE(FaultFired());
  }
  EXPECT_FALSE(statuses[0].ok());
  EXPECT_FALSE(statuses[1].ok());
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step4")));
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step4.staging")));

  TrainingRun resumed(cfg);
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    UCP_CHECK(r->tag == "global_step2");
  });
}

TEST_F(CrashConsistencyTest, ConverterCrashLeavesNoDebrisAndRetrySucceeds) {
  // Regression: ConvertToUcp used to write atoms straight into ucp_dir and bail on the
  // first error, so a retry hit AlreadyExists against a half-populated directory.
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);

  {
    ScopedFault fault({FaultPlan::Kind::kFailStop, FsOp::kWrite, 3, "atoms/", 0});
    Result<ConvertStats> stats = ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp"));
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
    EXPECT_TRUE(FaultFired());
  }
  EXPECT_FALSE(DirExists(Sub("ucp")));
  EXPECT_FALSE(DirExists(Sub("ucp.staging")));

  Result<ConvertStats> retry = ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp"));
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(IsUcpComplete(Sub("ucp")));
  EXPECT_EQ(ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp")).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CrashConsistencyTest, AtomBitRotIsCaughtOnReadAndByFsck) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);

  const char* victim = "language_model.output_layer.weight";
  {
    ScopedFault fault({FaultPlan::Kind::kBitRot, FsOp::kWrite, 1,
                       std::string(victim) + "/fp32", 777});
    ASSERT_TRUE(ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ucp")).ok());
    EXPECT_TRUE(FaultFired());
  }
  EXPECT_EQ(ReadAtom(Sub("ucp"), victim).status().code(), StatusCode::kDataLoss);

  Result<FsckReport> fsck = Fsck(Sub("ucp"), /*quarantine=*/false);
  ASSERT_TRUE(fsck.ok()) << fsck.status();
  EXPECT_FALSE(fsck->clean()) << fsck->ToString();
}

TEST_F(CrashConsistencyTest, FsckCleanOnHealthyRootAndQuarantinesDamage) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);
  run.Train(3, 4);
  SaveAll(run, Sub("ckpt"), 4);
  ASSERT_TRUE(
      ConvertToUcp(Sub("ckpt"), "global_step2", Sub("ckpt/global_step2.ucp")).ok());

  Result<FsckReport> healthy = Fsck(Sub("ckpt"), /*quarantine=*/false);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_TRUE(healthy->clean()) << healthy->ToString();

  // Rot the newest tag's optimizer shard on disk.
  std::string shard =
      PathJoin(Sub("ckpt/global_step4"), OptimStatesFileName(0, 0, 0, 0));
  std::string contents = *ReadFileToString(shard);
  contents[contents.size() / 2] ^= 0x04;
  ASSERT_TRUE(WriteFileAtomic(shard, contents).ok());

  Result<FsckReport> damaged = Fsck(Sub("ckpt"), /*quarantine=*/false);
  ASSERT_TRUE(damaged.ok());
  EXPECT_FALSE(damaged->clean());
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step4")));  // report-only mode doesn't touch it

  Result<FsckReport> quarantined = Fsck(Sub("ckpt"), /*quarantine=*/true);
  ASSERT_TRUE(quarantined.ok());
  ASSERT_EQ(quarantined->quarantined.size(), 1u) << quarantined->ToString();
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step4")));
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step4.quarantined")));

  // With the damage quarantined, resume lands on global_step2 even though `latest` still
  // names the quarantined tag.
  TrainingRun resumed(cfg);
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    UCP_CHECK(r->tag == "global_step2");
  });
}

TEST_F(CrashConsistencyTest, UncommittedTagIsFlaggedByValidatorAndMetaReader) {
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);
  ASSERT_TRUE(RemoveAll(Sub("ckpt/global_step2/complete")).ok());

  EXPECT_FALSE(IsTagComplete(Sub("ckpt"), "global_step2"));
  EXPECT_EQ(ReadCheckpointMeta(Sub("ckpt"), "global_step2").status().code(),
            StatusCode::kDataLoss);
  Result<ValidationReport> report = ValidateNativeCheckpoint(Sub("ckpt"), "global_step2");
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->ok());
  EXPECT_NE(report->problems[0].find("complete"), std::string::npos);
}

// ---- Kill-during-async-flush matrix ----
//
// Same discipline as the synchronous matrix, but the fault lands on the engine's background
// flusher instead of the rank threads: commit global_step2 synchronously, snapshot
// global_step4 through the async engine, kill the flush at an exact protocol point, and
// prove the resumed trajectory equals the uninterrupted (synchronous-baseline) run bit for
// bit. flush_threads=1 keeps the flusher's write/fsync/rename sequence — and therefore the
// injector's nth counts — deterministic.
struct AsyncCrashCase {
  const char* label;
  FaultPlan plan;
  bool wait_fails;        // fail-stop inside the flush surfaces through WaitAll...
  bool tag4_dir_remains;  // ...and may leave an uncommitted global_step4 behind
  bool check_find_latest;
};

class AsyncCrashMatrixTest : public CrashConsistencyTest,
                             public ::testing::WithParamInterface<AsyncCrashCase> {};

TEST_P(AsyncCrashMatrixTest, ResumeAfterKilledFlushFallsBackBitExact) {
  const AsyncCrashCase& c = GetParam();
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});

  TrainingRun ref(cfg);
  std::vector<double> ref_losses = ref.Train(1, 6);

  TrainingRun victim(cfg);
  victim.Train(1, 2);
  SaveAll(victim, Sub("ckpt"), 2);  // the synchronous-save baseline commit
  victim.Train(3, 4);

  Status wait = OkStatus();
  {
    AsyncCheckpointEngine engine(Sub("ckpt"), victim.world_size(),
                                 AsyncCheckpointOptions{/*flush_threads=*/1});
    ScopedFault fault(c.plan);
    victim.Run([&](RankTrainer& t) {
      // The snapshot never touches the filesystem, so SaveAsync itself cannot trip a plan.
      Status s = engine.SaveAsync(t, 4);
      UCP_CHECK(s.ok()) << s.ToString();
    });
    wait = engine.WaitAll();
    EXPECT_TRUE(FaultFired()) << c.label << ": plan never matched an operation";
    AsyncSaveStats stats = engine.stats();
    EXPECT_EQ(stats.failures, c.wait_fails ? 1 : 0) << c.label;
    EXPECT_EQ(stats.commits, c.wait_fails ? 0 : 1) << c.label;
  }
  EXPECT_EQ(wait.ok(), !c.wait_fails) << c.label << ": " << wait.ToString();
  EXPECT_EQ(DirExists(Sub("ckpt/global_step4")), c.tag4_dir_remains) << c.label;
  if (c.check_find_latest) {
    Result<std::string> valid = FindLatestValidTag(Sub("ckpt"));
    ASSERT_TRUE(valid.ok()) << valid.status();
    EXPECT_EQ(*valid, "global_step2") << c.label;
  }

  TrainingRun resumed(cfg);
  ResumeReport report;
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(Sub("ckpt"), t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    report = *r;
  });
  EXPECT_EQ(report.tag, "global_step2") << c.label;
  EXPECT_EQ(report.iteration, 2) << c.label;
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step4.staging")))
      << c.label << ": resume left flush debris behind";

  std::vector<double> resumed_losses = resumed.Train(3, 6);
  ASSERT_EQ(resumed_losses.size(), 4u);
  for (size_t i = 0; i < resumed_losses.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed_losses[i], ref_losses[i + 2])
        << c.label << " diverged at iteration " << 3 + i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AsyncInjectionMatrix, AsyncCrashMatrixTest,
    ::testing::Values(
        // The flusher dies writing the first shard into staging: the failure path clears
        // the staging dir, so nothing of global_step4 exists anywhere.
        AsyncCrashCase{"async_kill_mid_shard_write",
                       {FaultPlan::Kind::kFailStop, FsOp::kWrite, 1, "optim_states", 0},
                       /*wait_fails=*/true, /*tag4_dir_remains=*/false,
                       /*check_find_latest=*/true},
        // Killed at the first file rename inside the staging dir — the async twin of the
        // sync matrix's kill_before_staging_rename point.
        AsyncCrashCase{"async_kill_before_staging_rename",
                       {FaultPlan::Kind::kFailStop, FsOp::kRename, 1, "global_step4", 0},
                       /*wait_fails=*/true, /*tag4_dir_remains=*/false,
                       /*check_find_latest=*/true},
        // The deferred fsync batch fails right before the commit rename: the engine's
        // batched-fsync path must treat an unsynced shard as a failed flush, not commit it.
        AsyncCrashCase{"async_kill_in_fsync_batch",
                       {FaultPlan::Kind::kFailStop, FsOp::kFsync, 1, "global_step4", 0},
                       /*wait_fails=*/true, /*tag4_dir_remains=*/false,
                       /*check_find_latest=*/true},
        // Killed between the staging->tag rename and the `complete` marker: the tag dir
        // survives but no reader — including the next resume — trusts it.
        AsyncCrashCase{"async_kill_before_complete_marker",
                       {FaultPlan::Kind::kFailStop, FsOp::kWrite, 1, "complete", 0},
                       /*wait_fails=*/true, /*tag4_dir_remains=*/true,
                       /*check_find_latest=*/true},
        // Torn shard write: the flush and commit "succeed"; only the CRC knows. WaitAll is
        // clean — the damage surfaces at resume time, which must fall back a tag.
        AsyncCrashCase{"async_torn_optimizer_write",
                       {FaultPlan::Kind::kTornWrite, FsOp::kWrite, 1, "optim_states",
                        0xDEADBEEFu},
                       /*wait_fails=*/false, /*tag4_dir_remains=*/true,
                       /*check_find_latest=*/false},
        // Bit rot in the committed shard, detected by CRC at load.
        AsyncCrashCase{"async_bitrot_optimizer_payload",
                       {FaultPlan::Kind::kBitRot, FsOp::kWrite, 1, "optim_states", 12345},
                       /*wait_fails=*/false, /*tag4_dir_remains=*/true,
                       /*check_find_latest=*/false}),
    [](const ::testing::TestParamInfo<AsyncCrashCase>& info) { return info.param.label; });

// ---- Foreign-ingestion faults ----

TEST_F(CrashConsistencyTest, ForeignIngestCrashLeavesNoTrustedUcpAndRetrySucceeds) {
  // Fail-stop mid-ingest: the conversion stages its atoms, so a kill must leave neither a
  // trusted UCP directory nor un-retryable debris — a torn ingest may never masquerade as a
  // converted checkpoint.
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 2);
  run.Run([&](RankTrainer& t) {
    Status s = SaveForeignCheckpoint(Sub("foreign"), t, 2);
    UCP_CHECK(s.ok()) << s.ToString();
  });

  {
    ScopedFault fault({FaultPlan::Kind::kFailStop, FsOp::kWrite, 3, "atoms/", 0});
    Result<ConvertStats> stats =
        ConvertForeignToUcp(Sub("foreign"), "foreign_step2", Sub("ucp"));
    ASSERT_FALSE(stats.ok());
    EXPECT_EQ(stats.status().code(), StatusCode::kIoError);
    EXPECT_TRUE(FaultFired());
  }
  EXPECT_FALSE(DirExists(Sub("ucp")));
  EXPECT_FALSE(DirExists(Sub("ucp.staging")));

  Result<ConvertStats> retry =
      ConvertForeignToUcp(Sub("foreign"), "foreign_step2", Sub("ucp"));
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(IsUcpComplete(Sub("ucp")));
}

TEST_F(CrashConsistencyTest, TornForeignBundleIsRejectedAtIngest) {
  // The foreign framework's own save tears (crash after rename journaled, before data
  // flushed). Ingestion must refuse the source with kDataLoss and produce no output — not
  // convert a prefix of the optimizer into a "valid" UCP checkpoint.
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 2);
  Status save = OkStatus();
  {
    ScopedFault fault(
        {FaultPlan::Kind::kTornWrite, FsOp::kWrite, 1, "state_rank0", 0xF00Du});
    run.Run([&](RankTrainer& t) { save = SaveForeignCheckpoint(Sub("foreign"), t, 2); });
    EXPECT_TRUE(FaultFired());
  }
  EXPECT_TRUE(save.ok());  // the torn write lies, as a real crash would

  Result<ConvertStats> ingest =
      ConvertForeignToUcp(Sub("foreign"), "foreign_step2", Sub("ucp"));
  ASSERT_FALSE(ingest.ok());
  EXPECT_EQ(ingest.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(DirExists(Sub("ucp")));
  EXPECT_FALSE(DirExists(Sub("ucp.staging")));
}

TEST_F(CrashConsistencyTest, TornAtomWriteDuringForeignIngestIsCaughtByFsck) {
  // A torn atom write *inside* the ingest commits (the converter cannot know), but the
  // per-atom CRC keeps the damage from ever being trusted silently.
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 2);
  run.Run([&](RankTrainer& t) {
    Status s = SaveForeignCheckpoint(Sub("foreign"), t, 2);
    UCP_CHECK(s.ok()) << s.ToString();
  });

  {
    ScopedFault fault({FaultPlan::Kind::kTornWrite, FsOp::kWrite, 1, "/fp32", 0xBEEFu});
    Result<ConvertStats> stats =
        ConvertForeignToUcp(Sub("foreign"), "foreign_step2", Sub("ucp"));
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_TRUE(FaultFired());
  }
  EXPECT_TRUE(IsUcpComplete(Sub("ucp")));  // the marker is there...

  Result<FsckReport> fsck = Fsck(Sub("ucp"), /*quarantine=*/false);
  ASSERT_TRUE(fsck.ok()) << fsck.status();
  EXPECT_FALSE(fsck->clean()) << fsck->ToString();  // ...but the CRCs say otherwise
}

TEST_F(CrashConsistencyTest, PerTensorCrcLocalizesCorruptionPastTheFileCrc) {
  // An adversarial flip that also patches the whole-file CRC trailer must still be caught —
  // by the per-tensor CRC, which names the damaged member.
  TrainingRun run(ConfigFor({1, 1, 1, 1, 0, 1}));
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);

  std::string path = PathJoin(Sub("ckpt/global_step2"), OptimStatesFileName(0, 0, 0, 0));
  std::string contents = *ReadFileToString(path);
  ASSERT_GT(contents.size(), 64u);
  contents[contents.size() / 2] ^= 0x01;  // flip a payload bit
  uint32_t crc = Crc32(contents.data(), contents.size() - 4);  // re-seal the file CRC
  for (int i = 0; i < 4; ++i) {
    contents[contents.size() - 4 + static_cast<size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  ASSERT_TRUE(WriteFileAtomic(path, contents).ok());

  Status s = LoadBundle(path).status();
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_NE(s.ToString().find("per-tensor CRC"), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace ucp
