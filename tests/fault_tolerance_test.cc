// Fault-tolerance matrix for the elastic runtime: deterministic rank kills at chosen sites
// (mid-collective, mid-P2P, around async checkpoint saves) must never deadlock — the
// watchdog converts the hang into a detected RankFailure, the supervisor shrinks the
// parallelism strategy, and training resumes from the newest committed checkpoint with
// losses bit-identical to a clean reference on the shrunk strategy. Also covers the
// strategy-shrink policy, transient-I/O retry, and the fsck quarantine exit codes the
// recovery path leans on.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/common/fault_fs.h"
#include "src/common/fs.h"
#include "src/runtime/supervisor.h"
#include "src/ucp/elastic.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

using std::chrono::milliseconds;

TrainerConfig ConfigFor(const ParallelConfig& strategy) {
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = strategy;
  cfg.global_batch = 8;
  return cfg;
}

class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_fault_tol"); }
  void TearDown() override {
    DisarmRankFaults();  // never leak an armed kill into another test
    DisarmFaults();
    SetIoRetryPolicy(IoRetryPolicy{});
    ResetIoRetryStats();
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  std::string Sub(const std::string& name) { return PathJoin(dir_, name); }

  static void SaveAll(TrainingRun& run, const std::string& dir, int64_t iteration) {
    run.Run([&](RankTrainer& t) {
      Status s = SaveDistributedCheckpoint(dir, t, iteration);
      UCP_CHECK(s.ok()) << s.ToString();
    });
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// ShrinkStrategy policy
// ---------------------------------------------------------------------------

TEST(ShrinkStrategyTest, DropsDpBeforeTpByDefault) {
  const ModelConfig model = TinyGpt();
  Result<ParallelConfig> shrunk =
      ShrinkStrategy(model, /*global_batch=*/8, ParallelConfig{2, 1, 2, 1, 0, 1},
                     /*max_ranks=*/3);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status();
  EXPECT_EQ(*shrunk, (ParallelConfig{2, 1, 1, 1, 0, 1}));
}

TEST(ShrinkStrategyTest, HonorsTpFirstOrder) {
  const ModelConfig model = TinyGpt();
  Result<ParallelConfig> shrunk =
      ShrinkStrategy(model, 8, ParallelConfig{2, 1, 2, 1, 0, 1}, 3,
                     {ShrinkAxis::kTp, ShrinkAxis::kDp});
  ASSERT_TRUE(shrunk.ok()) << shrunk.status();
  EXPECT_EQ(*shrunk, (ParallelConfig{1, 1, 2, 1, 0, 1}));
}

TEST(ShrinkStrategyTest, ReturnsCurrentWhenItAlreadyFits) {
  const ModelConfig model = TinyGpt();
  const ParallelConfig current{2, 1, 2, 1, 0, 1};
  Result<ParallelConfig> same = ShrinkStrategy(model, 8, current, 4);
  ASSERT_TRUE(same.ok()) << same.status();
  EXPECT_EQ(*same, current);
}

TEST(ShrinkStrategyTest, CollapsesEveryAxisDownToOneRank) {
  const ModelConfig model = TinyGpt();
  Result<ParallelConfig> shrunk =
      ShrinkStrategy(model, 8, ParallelConfig{2, 2, 2, 1, 0, 1}, 1);
  ASSERT_TRUE(shrunk.ok()) << shrunk.status();
  EXPECT_EQ(shrunk->world_size(), 1);
}

TEST(ShrinkStrategyTest, RejectsNonPositiveMaxRanks) {
  EXPECT_EQ(ShrinkStrategy(TinyGpt(), 8, ParallelConfig{2, 1, 2, 1, 0, 1}, 0).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Transient-I/O retry
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, TransientWriteFailuresAreRetriedToSuccess) {
  IoRetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(2);
  SetIoRetryPolicy(policy);
  ResetIoRetryStats();

  // Fail the first two write attempts with kUnavailable, then let the third succeed.
  ScopedFault fault(
      {FaultPlan::Kind::kTransient, FsOp::kWrite, 1, "flaky.bin", 0, /*fail_count=*/2});
  Status s = WriteFileAtomic(Sub("flaky.bin"), "payload");
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(FaultFired());
  EXPECT_EQ(*ReadFileToString(Sub("flaky.bin")), "payload");

  IoRetryStats stats = GetIoRetryStats();
  EXPECT_EQ(stats.transient_errors, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.giveups, 0u);
}

TEST_F(FaultToleranceTest, RetryGivesUpWhenTheOutageOutlastsMaxAttempts) {
  IoRetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff = milliseconds(1);
  policy.max_backoff = milliseconds(2);
  SetIoRetryPolicy(policy);
  ResetIoRetryStats();

  ScopedFault fault(
      {FaultPlan::Kind::kTransient, FsOp::kWrite, 1, "flaky.bin", 0, /*fail_count=*/5});
  Status s = WriteFileAtomic(Sub("flaky.bin"), "payload");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
  EXPECT_FALSE(FileExists(Sub("flaky.bin")));

  IoRetryStats stats = GetIoRetryStats();
  EXPECT_EQ(stats.transient_errors, 2u);  // both attempts hit the outage
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.giveups, 1u);
}

TEST_F(FaultToleranceTest, PermanentFaultsAreNotRetried) {
  SetIoRetryPolicy(IoRetryPolicy{});
  ResetIoRetryStats();
  ScopedFault fault({FaultPlan::Kind::kFailStop, FsOp::kWrite, 1, "dead.bin", 0, 1});
  Status s = WriteFileAtomic(Sub("dead.bin"), "payload");
  EXPECT_EQ(s.code(), StatusCode::kIoError) << s.ToString();
  IoRetryStats stats = GetIoRetryStats();
  EXPECT_EQ(stats.transient_errors, 0u);  // kIoError is permanent: one attempt, no retry
  EXPECT_EQ(stats.retries, 0u);
}

// ---------------------------------------------------------------------------
// Kill matrix: no deadlock, automatic shrink + resume, correct root cause
// ---------------------------------------------------------------------------

struct KillCase {
  const char* label;
  ParallelConfig strategy;
  int victim;
  FaultSite site;
  int64_t kill_iteration;
  const char* expected_resume_tag;  // which committed tag recovery restores
};

class KillMatrixTest : public FaultToleranceTest,
                       public ::testing::WithParamInterface<KillCase> {};

TEST_P(KillMatrixTest, SupervisorDetectsShrinksAndResumes) {
  const KillCase& c = GetParam();
  TrainerConfig cfg = ConfigFor(c.strategy);

  SupervisorOptions options;
  options.ckpt_dir = Sub("ckpt");
  options.checkpoint_every = 2;
  options.watchdog_timeout = milliseconds(1500);
  Supervisor supervisor(cfg, options);

  SupervisorReport report;
  {
    ScopedRankFault kill({c.victim, c.kill_iteration, c.site, 1});
    report = supervisor.Train(1, 6);
    EXPECT_TRUE(RankFaultFired()) << c.label << ": the kill plan never matched";
  }

  ASSERT_TRUE(report.ok) << c.label << ": " << report.status.ToString();
  EXPECT_EQ(report.recoveries, 1) << c.label;
  ASSERT_EQ(report.timings.size(), 1u) << c.label;
  const RecoveryTiming& timing = report.timings[0];
  EXPECT_EQ(timing.failure.kind, RankFailure::Kind::kInjected) << c.label;
  EXPECT_EQ(timing.failure.rank, c.victim) << c.label;
  EXPECT_EQ(timing.failure.iteration, c.kill_iteration) << c.label;
  EXPECT_EQ(timing.resumed_tag, c.expected_resume_tag) << c.label;
  EXPECT_LT(report.final_strategy.world_size(), c.strategy.world_size()) << c.label;

  ASSERT_EQ(report.losses.size(), 6u) << c.label;
  for (size_t i = 0; i < report.losses.size(); ++i) {
    EXPECT_GT(report.losses[i], 0.0) << c.label << ": no final loss for iteration " << i + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KillMatrix, KillMatrixTest,
    ::testing::Values(
        // TP2.DP2 (4 ranks), killed inside the gradient all-reduce: first and last rank.
        // The checkpoint at iteration 2 is committed, so recovery replays 3..6.
        KillCase{"tp2dp2_rank0_allreduce", {2, 1, 2, 1, 0, 1}, 0, FaultSite::kAllReduce, 3,
                 "global_step2"},
        KillCase{"tp2dp2_rank3_allreduce", {2, 1, 2, 1, 0, 1}, 3, FaultSite::kAllReduce, 3,
                 "global_step2"},
        // Killed before its SaveAsync snapshot at iteration 4: the step-4 gather stays
        // incomplete, the supervisor abandons it, and recovery falls back to step 2.
        KillCase{"tp2dp2_rank0_before_save", {2, 1, 2, 1, 0, 1}, 0, FaultSite::kBeforeSave, 4,
                 "global_step2"},
        // Killed after its snapshot deposit, while the flush is in flight: the gather is
        // complete, so the step-4 save still commits and recovery resumes from it.
        KillCase{"tp2dp2_rank3_async_flush", {2, 1, 2, 1, 0, 1}, 3, FaultSite::kAsyncFlush, 4,
                 "global_step4"},
        // TP1.PP2 (2 ranks), killed inside a pipeline P2P receive: stage 0 dies receiving
        // the backward grad, stage 1 dies receiving the forward activation.
        KillCase{"pp2_rank0_p2p_recv", {1, 2, 1, 1, 0, 1}, 0, FaultSite::kP2PRecv, 3,
                 "global_step2"},
        KillCase{"pp2_rank1_p2p_recv", {1, 2, 1, 1, 0, 1}, 1, FaultSite::kP2PRecv, 3,
                 "global_step2"}),
    [](const ::testing::TestParamInfo<KillCase>& info) { return info.param.label; });

// ---------------------------------------------------------------------------
// Bit-exact recovery: supervisor resume == clean reference on the shrunk strategy
// ---------------------------------------------------------------------------

// Builds the reference trajectory for a shrink test: train 1..4 cleanly on `from`, save a
// sync checkpoint at iteration 4, resume a fresh run on `to` (through UCP when the strategy
// differs), and return the losses of iterations 5..8.
std::vector<double> ShrunkReferenceLosses(const std::string& ckpt_dir,
                                          const ParallelConfig& from,
                                          const ParallelConfig& to) {
  TrainerConfig from_cfg = ConfigFor(from);
  TrainingRun clean(from_cfg);
  clean.Train(1, 4);
  clean.Run([&](RankTrainer& t) {
    Status s = SaveDistributedCheckpoint(ckpt_dir, t, 4);
    UCP_CHECK(s.ok()) << s.ToString();
  });

  TrainerConfig to_cfg = ConfigFor(to);
  TrainingRun resumed(to_cfg);
  resumed.Run([&](RankTrainer& t) {
    Result<ResumeReport> r = ResumeElastic(ckpt_dir, t);
    UCP_CHECK(r.ok()) << r.status().ToString();
    UCP_CHECK_EQ(r->iteration, 4);
  });
  return resumed.Train(5, 8);
}

struct ShrinkExactCase {
  const char* label;
  std::vector<ShrinkAxis> order;
  ParallelConfig expected_final;  // TP2.DP2 minus one rank under this order
};

class ShrinkExactTest : public FaultToleranceTest,
                        public ::testing::WithParamInterface<ShrinkExactCase> {};

TEST_P(ShrinkExactTest, ResumedLossesMatchCleanShrunkReferenceBitExact) {
  const ShrinkExactCase& c = GetParam();
  const ParallelConfig full{2, 1, 2, 1, 0, 1};  // TP2.DP2, 4 ranks
  std::vector<double> ref_losses =
      ShrunkReferenceLosses(Sub("ref_ckpt"), full, c.expected_final);
  ASSERT_EQ(ref_losses.size(), 4u);

  TrainerConfig cfg = ConfigFor(full);
  SupervisorOptions options;
  options.ckpt_dir = Sub("sup_ckpt");
  options.checkpoint_every = 4;
  options.watchdog_timeout = milliseconds(1500);
  options.shrink_order = c.order;
  Supervisor supervisor(cfg, options);

  SupervisorReport report;
  {
    // Kill the last rank inside the all-reduce of iteration 6: past the committed step-4
    // checkpoint, so recovery replays 5..8 on the shrunk strategy.
    ScopedRankFault kill({3, 6, FaultSite::kAllReduce, 1});
    report = supervisor.Train(1, 8);
    EXPECT_TRUE(RankFaultFired()) << c.label;
  }

  ASSERT_TRUE(report.ok) << c.label << ": " << report.status.ToString();
  EXPECT_EQ(report.recoveries, 1) << c.label;
  EXPECT_EQ(report.final_strategy, c.expected_final) << c.label;
  ASSERT_EQ(report.timings.size(), 1u);
  EXPECT_EQ(report.timings[0].resumed_tag, "global_step4") << c.label;
  // The strategy changed, so resume must have gone through UCP, not the native loader.
  EXPECT_NE(report.timings[0].resume_path, ResumeReport::Path::kNative) << c.label;

  ASSERT_EQ(report.losses.size(), 8u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(report.losses[static_cast<size_t>(4 + i)], ref_losses[static_cast<size_t>(i)])
        << c.label << " diverged from the clean shrunk reference at iteration " << 5 + i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShrinkOrders, ShrinkExactTest,
    ::testing::Values(
        ShrinkExactCase{"default_order_drops_dp",
                        {ShrinkAxis::kDp, ShrinkAxis::kTp, ShrinkAxis::kPp, ShrinkAxis::kSp},
                        {2, 1, 1, 1, 0, 1}},
        ShrinkExactCase{"tp_first_order_drops_tp",
                        {ShrinkAxis::kTp, ShrinkAxis::kDp},
                        {1, 1, 2, 1, 0, 1}}),
    [](const ::testing::TestParamInfo<ShrinkExactCase>& info) { return info.param.label; });

// ---------------------------------------------------------------------------
// Fsck quarantine exit codes
// ---------------------------------------------------------------------------

// Flips one byte in the middle of `path` (silent media corruption; CRCs catch it).
void CorruptFile(const std::string& path) {
  Result<std::string> data = ReadFileToString(path);
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_FALSE(data->empty());
  std::string bytes = *data;
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
}

TEST_F(FaultToleranceTest, FsckExitCodesDistinguishCleanRepairedUnrecoverable) {
  TrainerConfig cfg = ConfigFor({1, 1, 1, 1, 0, 1});
  TrainingRun run(cfg);
  run.Train(1, 2);
  SaveAll(run, Sub("ckpt"), 2);
  run.Train(3, 4);
  SaveAll(run, Sub("ckpt"), 4);

  // Clean tree: exit 0 with and without quarantine.
  Result<FsckReport> clean = Fsck(Sub("ckpt"), FsckOptions{});
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_TRUE(clean->clean());
  EXPECT_EQ(clean->ExitCode(false), 0);
  EXPECT_EQ(clean->ExitCode(true), 0);

  // Corrupt the newest tag's model shard: report-only fsck exits 1 and renames nothing.
  CorruptFile(Sub("ckpt/global_step4/mp_rank_00_000_sp_00_model_states"));
  Result<FsckReport> found = Fsck(Sub("ckpt"), FsckOptions{});
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->ExitCode(false), 1);
  EXPECT_TRUE(found->quarantined.empty());
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step4")));

  // Quarantine: the damaged tag is renamed aside, an intact tag remains -> "repaired" (1).
  FsckOptions qopts;
  qopts.quarantine = true;
  Result<FsckReport> repaired = Fsck(Sub("ckpt"), qopts);
  ASSERT_TRUE(repaired.ok()) << repaired.status();
  EXPECT_EQ(repaired->ExitCode(true), 1);
  EXPECT_EQ(repaired->quarantine_failures, 0);
  ASSERT_EQ(repaired->quarantined.size(), 1u);
  EXPECT_EQ(repaired->quarantined[0], Sub("ckpt/global_step4.quarantined"));
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step4")));
  EXPECT_TRUE(DirExists(Sub("ckpt/global_step4.quarantined")));
  EXPECT_NE(repaired->QuarantineSummary().find("1 quarantined"), std::string::npos);
  EXPECT_NE(repaired->QuarantineSummary().find("1 intact entry remains"), std::string::npos);
  EXPECT_EQ(*FindLatestValidTag(Sub("ckpt")), "global_step2");

  // Corrupt the last surviving tag too: quarantine leaves nothing resumable -> 2.
  CorruptFile(Sub("ckpt/global_step2/mp_rank_00_000_sp_00_model_states"));
  Result<FsckReport> unrecoverable = Fsck(Sub("ckpt"), qopts);
  ASSERT_TRUE(unrecoverable.ok()) << unrecoverable.status();
  EXPECT_EQ(unrecoverable->ExitCode(true), 2);
  EXPECT_FALSE(DirExists(Sub("ckpt/global_step2")));
}

}  // namespace
}  // namespace ucp
