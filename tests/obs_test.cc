// Observability suite: the span tracer (nesting, ring wraparound, Chrome JSON schema),
// the metrics registry under concurrency (run under -DUCP_SANITIZE=thread to prove the
// hot-path atomics race-free), and the flight recorder — both called directly and
// triggered end-to-end by a rank-kill under the elastic supervisor.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fs.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/thread_pool.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/obs/trace_merge.h"
#include "src/runtime/supervisor.h"

namespace ucp {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTraceEnabled(true);
    obs::SetTraceRingCapacity(8192);
    obs::ResetTrace();
  }
  void TearDown() override {
    DisarmRankFaults();
    obs::SetTraceEnabled(true);
    obs::SetTraceRingCapacity(8192);
    obs::ResetTrace();
  }
};

#if UCP_OBS_ENABLED

// Every event named `name` across all thread rings (tests run their spans on dedicated
// threads so other suites' residue never collides on names).
std::vector<obs::TraceEvent> EventsNamed(const std::string& name) {
  std::vector<obs::TraceEvent> out;
  for (const obs::ThreadTrace& t : obs::CollectThreadTraces()) {
    for (const obs::TraceEvent& e : t.events) {
      if (e.name == name) {
        out.push_back(e);
      }
    }
  }
  return out;
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndContainment) {
  std::thread([] {
    UCP_TRACE_NAMED_SPAN(outer, "obs_test.outer");
    UCP_TRACE_SPAN_ARG_I(outer, "level", 0);
    {
      UCP_TRACE_SPAN("obs_test.middle");
      { UCP_TRACE_SPAN_ARGS("obs_test.inner", ::ucp::obs::TraceArgs().S("leaf", "yes")); }
    }
  }).join();

  std::vector<obs::TraceEvent> outer = EventsNamed("obs_test.outer");
  std::vector<obs::TraceEvent> middle = EventsNamed("obs_test.middle");
  std::vector<obs::TraceEvent> inner = EventsNamed("obs_test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(middle.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0);
  EXPECT_EQ(middle[0].depth, 1);
  EXPECT_EQ(inner[0].depth, 2);
  // Inner spans close first (destruction order), so sequence numbers run inside-out...
  EXPECT_LT(inner[0].seq, middle[0].seq);
  EXPECT_LT(middle[0].seq, outer[0].seq);
  // ...and each child's interval nests inside its parent's.
  EXPECT_GE(inner[0].start_ns, middle[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns, middle[0].start_ns + middle[0].dur_ns);
  EXPECT_GE(middle[0].start_ns, outer[0].start_ns);
  EXPECT_LE(middle[0].start_ns + middle[0].dur_ns, outer[0].start_ns + outer[0].dur_ns);
  EXPECT_EQ(outer[0].args_json, "\"level\":0");
  EXPECT_EQ(inner[0].args_json, "\"leaf\":\"yes\"");
}

TEST_F(ObsTest, SpansOnPoolThreadsLandInSeparateRings) {
  constexpr size_t kTasks = 16;
  {
    ThreadPool pool(4);
    pool.ParallelFor(kTasks, [](size_t i) {
      UCP_TRACE_SPAN_ARGS("obs_test.pool_task",
                          ::ucp::obs::TraceArgs().I("task", static_cast<int64_t>(i)));
      // Nested work on the same pool thread must stack, not cross-talk between threads.
      UCP_TRACE_SPAN("obs_test.pool_nested");
    });
  }
  std::vector<obs::TraceEvent> tasks = EventsNamed("obs_test.pool_task");
  std::vector<obs::TraceEvent> nested = EventsNamed("obs_test.pool_nested");
  EXPECT_EQ(tasks.size(), kTasks);
  EXPECT_EQ(nested.size(), kTasks);
  for (const obs::TraceEvent& e : tasks) {
    EXPECT_EQ(e.depth, 0);
  }
  for (const obs::TraceEvent& e : nested) {
    EXPECT_EQ(e.depth, 1);
  }
}

TEST_F(ObsTest, RingWrapsOldestFirstAndCountsDropped) {
  obs::SetTraceRingCapacity(8);
  obs::ResetTrace();
  std::thread([] {
    for (int i = 0; i < 20; ++i) {
      UCP_TRACE_SPAN_ARGS("obs_test.wrap", ::ucp::obs::TraceArgs().I("i", i));
    }
  }).join();

  bool found = false;
  for (const obs::ThreadTrace& t : obs::CollectThreadTraces()) {
    if (t.events.empty() || t.events[0].name != "obs_test.wrap") {
      continue;
    }
    found = true;
    EXPECT_EQ(t.events.size(), 8u);
    EXPECT_EQ(t.dropped, 12u);
    // Oldest-first linearization: the survivors are the newest 8, in order.
    for (size_t i = 0; i < t.events.size(); ++i) {
      EXPECT_EQ(t.events[i].args_json, "\"i\":" + std::to_string(12 + i));
      if (i > 0) {
        EXPECT_EQ(t.events[i].seq, t.events[i - 1].seq + 1);
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, ChromeJsonParsesAndMapsRanksToProcesses) {
  std::thread([] {
    obs::SetThreadRank(0);
    UCP_TRACE_SPAN_ARGS("obs_test.rank_span", ::ucp::obs::TraceArgs().S("who", "r0"));
    UCP_TRACE_INSTANT("obs_test.marker", ::ucp::obs::TraceArgs().I("at", 1));
  }).join();
  std::thread([] {
    obs::SetThreadRank(3);
    UCP_TRACE_SPAN("obs_test.rank_span");
  }).join();

  Result<Json> parsed = Json::Parse(obs::ExportChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<const JsonArray*> events = parsed->GetArray("traceEvents");
  ASSERT_TRUE(events.ok()) << events.status();

  std::set<int64_t> span_pids;
  std::set<std::string> process_names;
  bool saw_instant = false;
  for (const Json& e : **events) {
    ASSERT_TRUE(e.is_object());
    Result<std::string> ph = e.GetString("ph");
    ASSERT_TRUE(ph.ok());
    ASSERT_TRUE(e.GetInt("pid").ok());
    ASSERT_TRUE(e.GetInt("tid").ok());
    ASSERT_TRUE(e.GetString("name").ok());
    if (*ph == "M") {
      if (*e.GetString("name") == "process_name") {
        process_names.insert(*e.AsObject().at("args").GetString("name"));
      }
      continue;
    }
    ASSERT_TRUE(e.GetDouble("ts").ok());  // microseconds
    if (*ph == "X") {
      ASSERT_TRUE(e.GetDouble("dur").ok());
      if (*e.GetString("name") == "obs_test.rank_span") {
        span_pids.insert(*e.GetInt("pid"));
      }
    } else if (*ph == "i") {
      EXPECT_EQ(*e.GetString("s"), "t");
      if (*e.GetString("name") == "obs_test.marker") {
        saw_instant = true;
      }
    }
  }
  // pid = rank + 1: the two tagged threads render as separate Perfetto process tracks.
  EXPECT_TRUE(span_pids.count(1)) << "rank 0 span missing pid 1";
  EXPECT_TRUE(span_pids.count(4)) << "rank 3 span missing pid 4";
  EXPECT_TRUE(process_names.count("rank 0"));
  EXPECT_TRUE(process_names.count("rank 3"));
  EXPECT_TRUE(saw_instant);
}

// Pulls a named arg ("trace_id", "span_id", "parent_span_id") out of an exported event.
std::string EventArg(const Json& event, const char* key) {
  if (!event.Has("args")) {
    return std::string();
  }
  Result<std::string> v = event.AsObject().at("args").GetString(key);
  return v.ok() ? *v : std::string();
}

TEST_F(ObsTest, TraceContextParentsSpansAndAnnotatesExport) {
  uint64_t trace_id = 0;
  uint64_t outer_id = 0;
  std::thread([&] {
    obs::ScopedTraceContext root;  // fresh root: no context was installed
    trace_id = obs::CurrentTraceContext().trace_id;
    UCP_TRACE_NAMED_SPAN(outer, "obs_test.ctx_outer");
    outer_id = outer.span_id();
    { UCP_TRACE_SPAN("obs_test.ctx_inner"); }
  }).join();
  ASSERT_NE(trace_id, 0u);
  ASSERT_NE(outer_id, 0u);

  Result<Json> parsed = Json::Parse(obs::ExportChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<const JsonArray*> events = parsed->GetArray("traceEvents");
  ASSERT_TRUE(events.ok());
  bool saw_outer = false;
  bool saw_inner = false;
  for (const Json& e : **events) {
    Result<std::string> name = e.GetString("name");
    if (!name.ok()) {
      continue;
    }
    if (*name == "obs_test.ctx_outer") {
      saw_outer = true;
      EXPECT_EQ(EventArg(e, "trace_id"), obs::TraceIdHex(trace_id));
      EXPECT_EQ(EventArg(e, "span_id"), obs::TraceIdHex(outer_id));
      // The root context has span_id 0, so the outermost span has no parent arg.
      EXPECT_TRUE(EventArg(e, "parent_span_id").empty());
    } else if (*name == "obs_test.ctx_inner") {
      saw_inner = true;
      EXPECT_EQ(EventArg(e, "trace_id"), obs::TraceIdHex(trace_id));
      EXPECT_EQ(EventArg(e, "parent_span_id"), obs::TraceIdHex(outer_id));
      EXPECT_NE(EventArg(e, "span_id"), obs::TraceIdHex(outer_id));
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST_F(ObsTest, AdoptedContextParentsUnderRemoteSpan) {
  // Simulates the daemon side: a wire-propagated (trace_id, span_id) is adopted verbatim
  // and the handling span parents under the remote client span.
  const uint64_t trace_id = obs::NewTraceId();
  const uint64_t client_span = obs::NewTraceId();
  std::thread([&] {
    obs::TraceContext ctx;
    ctx.trace_id = trace_id;
    ctx.span_id = client_span;
    obs::ScopedTraceContext adopt(ctx);
    UCP_TRACE_SPAN("obs_test.adopted");
  }).join();

  Result<Json> parsed = Json::Parse(obs::ExportChromeTraceJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  bool saw = false;
  for (const Json& e : **parsed->GetArray("traceEvents")) {
    Result<std::string> name = e.GetString("name");
    if (name.ok() && *name == "obs_test.adopted") {
      saw = true;
      EXPECT_EQ(EventArg(e, "trace_id"), obs::TraceIdHex(trace_id));
      EXPECT_EQ(EventArg(e, "parent_span_id"), obs::TraceIdHex(client_span));
    }
  }
  EXPECT_TRUE(saw);
}

TEST_F(ObsTest, MergeChromeTracesLinksClientAndServerWithFlowEvents) {
  // Client half: one RPC span under a root context.
  uint64_t trace_id = 0;
  uint64_t rpc_span = 0;
  std::thread([&] {
    obs::ScopedTraceContext root;
    trace_id = obs::CurrentTraceContext().trace_id;
    UCP_TRACE_NAMED_SPAN(rpc, "store.client.rpc");
    rpc_span = rpc.span_id();
  }).join();
  const std::string client_json = obs::ExportChromeTraceJson();
  obs::ResetTrace();

  // Server half: the daemon adopts the wire context around its handling span, on a thread
  // tagged with the daemon's process track.
  std::thread([&] {
    obs::SetThreadTrackName("ucp_serverd");
    obs::TraceContext ctx;
    ctx.trace_id = trace_id;
    ctx.span_id = rpc_span;
    obs::ScopedTraceContext adopt(ctx);
    UCP_TRACE_SPAN("store.server.rpc");
  }).join();
  const std::string server_json = obs::ExportChromeTraceJson();

  obs::TraceMergeStats stats;
  Result<std::string> merged = obs::MergeChromeTraces(client_json, server_json, &stats);
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_GE(stats.client_events, 1u);
  EXPECT_GE(stats.server_events, 1u);
  EXPECT_EQ(stats.flow_links, 1u);

  Result<Json> parsed = Json::Parse(*merged);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Result<const JsonArray*> events = parsed->GetArray("traceEvents");
  ASSERT_TRUE(events.ok());

  int64_t client_pid = -1;
  int64_t server_pid = -1;
  std::set<std::string> phases;
  std::set<std::string> process_names;
  for (const Json& e : **events) {
    Result<std::string> ph = e.GetString("ph");
    Result<std::string> name = e.GetString("name");
    if (!ph.ok() || !name.ok()) {
      continue;
    }
    if (*ph == "M" && *name == "process_name") {
      process_names.insert(EventArg(e, "name"));
    }
    if (*ph == "X" && *name == "store.client.rpc") {
      client_pid = *e.GetInt("pid");
    }
    if (*ph == "X" && *name == "store.server.rpc") {
      server_pid = *e.GetInt("pid");
    }
    if (*name == "rpc") {
      phases.insert(*ph);
    }
  }
  // Distinct process tracks, prefixed metadata, and the s/t/f flow triple.
  ASSERT_GE(client_pid, 0);
  ASSERT_GE(server_pid, 0);
  EXPECT_NE(client_pid, server_pid);
  EXPECT_TRUE(process_names.count("server: ucp_serverd")) << *merged;
  EXPECT_TRUE(phases.count("s"));
  EXPECT_TRUE(phases.count("t"));
  EXPECT_TRUE(phases.count("f"));
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  obs::SetTraceEnabled(false);
  std::thread([] {
    UCP_TRACE_SPAN("obs_test.disabled");
    UCP_TRACE_INSTANT("obs_test.disabled_marker");
  }).join();
  obs::SetTraceEnabled(true);
  EXPECT_TRUE(EventsNamed("obs_test.disabled").empty());
  EXPECT_TRUE(EventsNamed("obs_test.disabled_marker").empty());
}

#endif  // UCP_OBS_ENABLED

TEST_F(ObsTest, MetricsAreConsistentUnderConcurrentUpdates) {
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter("obs_test.counter");
  obs::Gauge& gauge = obs::MetricsRegistry::Global().GetGauge("obs_test.gauge");
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.histogram");
  counter.Reset();
  gauge.Set(0);
  histogram.Reset();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        gauge.Max(t * kPerThread + i);
        histogram.Observe(0.001 * (t + 1));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge.Value(), static_cast<int64_t>(kThreads) * kPerThread - 1);

  bool found = false;
  for (const obs::MetricValue& m : obs::SnapshotMetrics()) {
    if (m.name != "obs_test.histogram") {
      continue;
    }
    found = true;
    EXPECT_EQ(m.kind, obs::MetricValue::Kind::kHistogram);
    EXPECT_EQ(m.count, static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_NEAR(m.max, 0.001 * kThreads, 0.001 * kThreads * 0.5);
    EXPECT_GT(m.sum, 0.0);
  }
  EXPECT_TRUE(found);

  const std::string dump = obs::DumpMetricsText();
  EXPECT_NE(dump.find("obs_test.counter"), std::string::npos);
  EXPECT_NE(dump.find("obs_test.histogram"), std::string::npos);
}

TEST_F(ObsTest, PrometheusExpositionManglesNamesAndEmitsCumulativeBuckets) {
  obs::MetricsRegistry::Global().GetCounter("obs_test.prom.counter").Reset();
  obs::MetricsRegistry::Global().GetCounter("obs_test.prom.counter").Add(5);
  obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("obs_test.prom.seconds");
  histogram.Reset();
  histogram.Observe(0.0000005);  // sub-micro: lands in bucket 0
  histogram.Observe(0.003);
  histogram.Observe(0.003);
  histogram.Observe(1.5);

  const std::string dump = obs::DumpMetricsPrometheus();
  // Dotted registry names mangle to Prometheus-safe underscores, with TYPE lines.
  EXPECT_NE(dump.find("# TYPE obs_test_prom_counter counter"), std::string::npos) << dump;
  EXPECT_NE(dump.find("obs_test_prom_counter 5"), std::string::npos);
  EXPECT_NE(dump.find("# TYPE obs_test_prom_seconds histogram"), std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_seconds_count 4"), std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_seconds_sum"), std::string::npos);
  EXPECT_NE(dump.find("obs_test_prom_seconds_bucket{le=\"+Inf\"} 4"), std::string::npos);

  // Bucket counts must be cumulative and monotonically non-decreasing up to +Inf.
  uint64_t prev = 0;
  size_t buckets = 0;
  size_t pos = 0;
  const std::string needle = "obs_test_prom_seconds_bucket{le=\"";
  while ((pos = dump.find(needle, pos)) != std::string::npos) {
    const size_t count_at = dump.find("} ", pos);
    ASSERT_NE(count_at, std::string::npos);
    const uint64_t count = std::strtoull(dump.c_str() + count_at + 2, nullptr, 10);
    EXPECT_GE(count, prev) << dump;
    prev = count;
    ++buckets;
    pos = count_at;
  }
  EXPECT_GE(buckets, 2u);   // at least one finite bucket plus +Inf
  EXPECT_EQ(prev, 4u);      // the +Inf bucket equals _count
}

TEST_F(ObsTest, FlightRecorderWritesDossier) {
  const std::string dir = *MakeTempDir("ucp_obs_flightrec");
#if UCP_OBS_ENABLED
  std::thread([] { UCP_TRACE_SPAN("obs_test.before_crash"); }).join();
#endif
  obs::MetricsRegistry::Global().GetCounter("obs_test.dossier").Add(7);

  std::string trace_path;
  std::string err;
  ASSERT_TRUE(obs::DumpFlightRecord(dir, "unit test/label", &trace_path, &err)) << err;
  // The dump lands under <dir>/flightrec/ with the label sanitized into the file name
  // (space and '/' become '-').
  EXPECT_NE(trace_path.find(PathJoin(dir, "flightrec")), std::string::npos);
  EXPECT_NE(trace_path.find("unit-test-label"), std::string::npos) << trace_path;

  Result<std::string> trace_text = ReadFileToString(trace_path);
  ASSERT_TRUE(trace_text.ok()) << trace_text.status();
  Result<Json> parsed = Json::Parse(*trace_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->GetArray("traceEvents").ok());

  const std::string metrics_path =
      trace_path.substr(0, trace_path.size() - std::string(".trace.json").size()) +
      ".metrics.txt";
  Result<std::string> metrics_text = ReadFileToString(metrics_path);
  ASSERT_TRUE(metrics_text.ok()) << metrics_text.status();
  EXPECT_NE(metrics_text->find("obs_test.dossier"), std::string::npos);

  ASSERT_TRUE(RemoveAll(dir).ok());
}

// End-to-end: a rank kill under the supervisor leaves a flight-recorder dossier beside the
// checkpoints, and (with tracing compiled in) the dumped Chrome trace carries per-rank
// process tracks from the doomed run.
TEST_F(ObsTest, RankKillLeavesFlightRecorderDump) {
  const std::string dir = *MakeTempDir("ucp_obs_kill");
  TrainerConfig cfg;
  cfg.model = TinyGpt();
  cfg.strategy = {2, 1, 2, 1, 0, 1};
  cfg.global_batch = 8;

  SupervisorOptions options;
  options.ckpt_dir = PathJoin(dir, "ckpt");
  options.checkpoint_every = 2;
  options.watchdog_timeout = std::chrono::milliseconds(1500);
  Supervisor supervisor(cfg, options);

  SupervisorReport report;
  {
    ScopedRankFault kill({/*rank=*/3, /*iteration=*/3, FaultSite::kAllReduce, /*nth=*/1});
    report = supervisor.Train(1, 4);
    EXPECT_TRUE(RankFaultFired());
  }
  ASSERT_TRUE(report.ok) << report.status.ToString();
  ASSERT_EQ(report.recoveries, 1);

  Result<std::vector<std::string>> files =
      ListDir(PathJoin(options.ckpt_dir, "flightrec"));
  ASSERT_TRUE(files.ok()) << files.status();
  std::string trace_file;
  std::string metrics_file;
  for (const std::string& f : *files) {
    if (f.find("rank-failure") == std::string::npos) {
      continue;
    }
    if (f.size() > 11 && f.substr(f.size() - 11) == ".trace.json") {
      trace_file = f;
    }
    if (f.size() > 12 && f.substr(f.size() - 12) == ".metrics.txt") {
      metrics_file = f;
    }
  }
  ASSERT_FALSE(trace_file.empty()) << "no rank-failure trace in flightrec/";
  ASSERT_FALSE(metrics_file.empty()) << "no rank-failure metrics in flightrec/";

  Result<std::string> text =
      ReadFileToString(PathJoin(PathJoin(options.ckpt_dir, "flightrec"), trace_file));
  ASSERT_TRUE(text.ok()) << text.status();
  Result<Json> parsed = Json::Parse(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
#if UCP_OBS_ENABLED
  // The doomed TP2.DP2 world traced under ranks 0..3; at least one rank track must have
  // made it into the dossier.
  Result<const JsonArray*> events = parsed->GetArray("traceEvents");
  ASSERT_TRUE(events.ok());
  bool saw_rank_pid = false;
  for (const Json& e : **events) {
    Result<int64_t> pid = e.GetInt("pid");
    if (pid.ok() && *pid >= 1) {
      saw_rank_pid = true;
      break;
    }
  }
  EXPECT_TRUE(saw_rank_pid);
#endif

  ASSERT_TRUE(RemoveAll(dir).ok());
}

TEST(ObsLoggingTest, LevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

}  // namespace
}  // namespace ucp
