// Layer-granularity parallel-equivalence tests: each TP/SP-aware layer computes the same
// function (forward and backward) as its serial counterpart, for every supported degree.

#include <gtest/gtest.h>

#include "src/comm/comm.h"
#include "src/model/attention.h"
#include "src/model/inventory.h"
#include "src/model/linear.h"
#include "src/model/mlp.h"
#include "src/tensor/matmul.h"

namespace ucp {
namespace {

Tensor Random(Shape shape, uint64_t stream) {
  CounterRng rng(31337, stream);
  return Tensor::Gaussian(std::move(shape), rng, 0, 0.5f);
}

ParamPtr MakeParam(const std::string& name, Tensor value) {
  auto p = std::make_shared<Param>();
  p->info.name = name;
  p->value = std::move(value);
  p->AllocateGrad();
  return p;
}

// Runs `body(rank, ctx)` on `tp` threads with a shared TP group (SP size 1).
void RunTp(int tp, int64_t tokens, const std::function<void(int, LayerContext&)>& body) {
  World world(tp);
  std::vector<int> ranks;
  for (int i = 0; i < tp; ++i) {
    ranks.push_back(i);
  }
  auto tp_state = world.CreateGroup(ranks);
  RunSpmd(tp, [&](int rank) {
    LayerContext ctx;
    ctx.tp = ProcessGroup(tp_state, rank);
    World sp_world(1);
    // Per-rank size-1 SP group.
    auto sp_state = sp_world.CreateGroup({0});
    ctx.sp = ProcessGroup(sp_state, 0);
    ctx.batch = 1;
    ctx.seq_total = static_cast<int>(tokens);
    ctx.seq_local = static_cast<int>(tokens);
    ctx.seq_offset = 0;
    body(rank, ctx);
  });
}

class LinearTpTest : public ::testing::TestWithParam<int> {};

TEST_P(LinearTpTest, ColumnParallelMatchesSerial) {
  const int tp = GetParam();
  const int64_t tokens = 6;
  const int64_t in = 8;
  const int64_t out = 12;
  Tensor w_full = Random({out, in}, 1);
  Tensor b_full = Random({out}, 2);
  Tensor x = Random({tokens, in}, 3);
  Tensor dy_full = Random({tokens, out}, 4);

  // Serial reference.
  Tensor y_ref = MatmulNT(x, w_full);
  for (int64_t r = 0; r < tokens; ++r) {
    for (int64_t c = 0; c < out; ++c) {
      y_ref.at(r * out + c) += b_full.at(c);
    }
  }
  Tensor dx_ref = MatmulNN(dy_full, w_full);
  Tensor dw_ref = MatmulTN(dy_full, x);

  PartitionSpec spec = PartitionSpec::Fragment(0);
  std::vector<Tensor> y_parts(static_cast<size_t>(tp));
  std::vector<Tensor> dx_parts(static_cast<size_t>(tp));
  std::vector<Tensor> dw_parts(static_cast<size_t>(tp));
  RunTp(tp, tokens, [&](int rank, LayerContext& ctx) {
    ParamPtr w = MakeParam("w", ShardOf(spec, w_full, tp, rank));
    ParamPtr b = MakeParam("b", ShardOf(spec, b_full, tp, rank));
    ColumnParallelLinear layer(w, b);
    Tensor y = layer.Forward(x);
    Tensor dy = ShardOf(spec, dy_full.Transpose2D(), tp, rank).Transpose2D();  // col slice
    Tensor dx = layer.Backward(dy, ctx);
    y_parts[static_cast<size_t>(rank)] = y;
    dx_parts[static_cast<size_t>(rank)] = dx;
    dw_parts[static_cast<size_t>(rank)] = w->grad.Clone();
  });

  EXPECT_TRUE(Tensor::AllClose(Tensor::Concat(y_parts, 1), y_ref, 1e-4f, 1e-4f));
  for (const Tensor& dx : dx_parts) {
    EXPECT_TRUE(Tensor::AllClose(dx, dx_ref, 1e-4f, 1e-4f));
  }
  EXPECT_TRUE(Tensor::AllClose(Unshard(spec, dw_parts, {out, in}), dw_ref, 1e-4f, 1e-4f));
}

TEST_P(LinearTpTest, RowParallelMatchesSerial) {
  const int tp = GetParam();
  const int64_t tokens = 5;
  const int64_t in = 12;
  const int64_t out = 7;
  Tensor w_full = Random({out, in}, 5);
  Tensor b_full = Random({out}, 6);
  Tensor x_full = Random({tokens, in}, 7);
  Tensor dy = Random({tokens, out}, 8);

  Tensor y_ref = MatmulNT(x_full, w_full);
  for (int64_t r = 0; r < tokens; ++r) {
    for (int64_t c = 0; c < out; ++c) {
      y_ref.at(r * out + c) += b_full.at(c);
    }
  }
  Tensor dx_ref = MatmulNN(dy, w_full);
  Tensor dw_ref = MatmulTN(dy, x_full);

  PartitionSpec w_spec = PartitionSpec::Fragment(1);
  PartitionSpec x_spec = PartitionSpec::Fragment(1);
  std::vector<Tensor> y_parts(static_cast<size_t>(tp));
  std::vector<Tensor> dx_parts(static_cast<size_t>(tp));
  std::vector<Tensor> dw_parts(static_cast<size_t>(tp));
  RunTp(tp, tokens, [&](int rank, LayerContext& ctx) {
    ParamPtr w = MakeParam("w", ShardOf(w_spec, w_full, tp, rank));
    ParamPtr b = MakeParam("b", b_full.Clone());
    RowParallelLinear layer(w, b);
    Tensor x_local = ShardOf(x_spec, x_full, tp, rank);
    Tensor y = layer.Forward(x_local, ctx);
    Tensor dx_local = layer.Backward(dy);
    y_parts[static_cast<size_t>(rank)] = y;
    dx_parts[static_cast<size_t>(rank)] = dx_local;
    dw_parts[static_cast<size_t>(rank)] = w->grad.Clone();
  });

  for (const Tensor& y : y_parts) {
    EXPECT_TRUE(Tensor::AllClose(y, y_ref, 1e-4f, 1e-4f));
  }
  EXPECT_TRUE(Tensor::AllClose(Unshard(x_spec, dx_parts, {tokens, in}), dx_ref, 1e-4f,
                               1e-4f));
  EXPECT_TRUE(Tensor::AllClose(Unshard(w_spec, dw_parts, {out, in}), dw_ref, 1e-4f, 1e-4f));
}

TEST_P(LinearTpTest, VocabParallelEmbeddingMatchesSerial) {
  const int tp = GetParam();
  const int64_t vocab = 16;
  const int64_t hidden = 6;
  Tensor w_full = Random({vocab, hidden}, 9);
  Tensor tokens = Tensor::FromVector({2, 3}, {0, 5, 15, 7, 7, 3});
  Tensor dx = Random({6, hidden}, 10);

  // Serial reference: row lookup forward, scatter-add backward.
  Tensor x_ref = Tensor::Zeros({6, hidden});
  Tensor dw_ref = Tensor::Zeros({vocab, hidden});
  for (int64_t i = 0; i < 6; ++i) {
    auto t = static_cast<int64_t>(tokens.at(i));
    for (int64_t c = 0; c < hidden; ++c) {
      x_ref.at(i * hidden + c) = w_full.at(t * hidden + c);
      dw_ref.at(t * hidden + c) += dx.at(i * hidden + c);
    }
  }

  PartitionSpec spec = PartitionSpec::Fragment(0);
  std::vector<Tensor> x_parts(static_cast<size_t>(tp));
  std::vector<Tensor> dw_parts(static_cast<size_t>(tp));
  RunTp(tp, 6, [&](int rank, LayerContext& ctx) {
    ParamPtr w = MakeParam("emb", ShardOf(spec, w_full, tp, rank));
    VocabParallelEmbedding layer(w, rank);
    Tensor x = layer.Forward(tokens, ctx);
    layer.Backward(dx);
    x_parts[static_cast<size_t>(rank)] = x;
    dw_parts[static_cast<size_t>(rank)] = w->grad.Clone();
  });

  for (const Tensor& x : x_parts) {
    EXPECT_TRUE(Tensor::AllClose(x, x_ref, 1e-5f, 1e-5f));
  }
  EXPECT_TRUE(
      Tensor::AllClose(Unshard(spec, dw_parts, {vocab, hidden}), dw_ref, 1e-5f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(TpDegrees, LinearTpTest, ::testing::Values(1, 2, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "tp" + std::to_string(info.param);
                         });

// ---- Attention: TP-parallel output equals single-rank output ----

TEST(AttentionTpTest, MatchesSerialAcrossTpDegrees) {
  ModelConfig config = TinyLlama();  // GQA makes this the interesting case
  const int layer = 0;
  const int64_t tokens = 16;        // batch 1, full seq
  Tensor x = Random({tokens, config.hidden}, 20);
  Tensor dy = Random({tokens, config.hidden}, 21);

  auto build_params = [&](int tp, int rank) {
    std::vector<InventoryEntry> inventory = BuildInventory(config);
    ParamStore store;
    for (const InventoryEntry& e : inventory) {
      store.Add(MaterializeParam(e.param, config.init_seed, tp, rank));
    }
    return store;
  };

  // Serial reference.
  Tensor y_ref;
  Tensor dx_ref;
  {
    ParamStore store = build_params(1, 0);
    ParallelAttention attn(
        config, 1,
        store.Get(LayerParamName(layer, "self_attention.query_key_value.weight")), nullptr,
        store.Get(LayerParamName(layer, "self_attention.dense.weight")), nullptr);
    RunTp(1, tokens, [&](int, LayerContext& ctx) {
      y_ref = attn.Forward(x, ctx);
      dx_ref = attn.Backward(dy, ctx);
    });
  }

  for (int tp : {2}) {
    std::vector<Tensor> y_parts(static_cast<size_t>(tp));
    std::vector<Tensor> dx_parts(static_cast<size_t>(tp));
    RunTp(tp, tokens, [&](int rank, LayerContext& ctx) {
      ParamStore store = build_params(tp, rank);
      ParallelAttention attn(
          config, tp,
          store.Get(LayerParamName(layer, "self_attention.query_key_value.weight")), nullptr,
          store.Get(LayerParamName(layer, "self_attention.dense.weight")), nullptr);
      y_parts[static_cast<size_t>(rank)] = attn.Forward(x, ctx);
      dx_parts[static_cast<size_t>(rank)] = attn.Backward(dy, ctx);
    });
    for (int r = 0; r < tp; ++r) {
      EXPECT_TRUE(Tensor::AllClose(y_parts[static_cast<size_t>(r)], y_ref, 1e-4f, 1e-3f))
          << "tp " << tp << " rank " << r << " max diff "
          << Tensor::MaxAbsDiff(y_parts[static_cast<size_t>(r)], y_ref);
      EXPECT_TRUE(Tensor::AllClose(dx_parts[static_cast<size_t>(r)], dx_ref, 1e-4f, 1e-3f));
    }
  }
}

// ---- Attention under SP: sharded sequence equals full sequence ----

TEST(AttentionSpTest, SequenceShardsComposeToSerial) {
  ModelConfig config = TinyGpt();
  const int64_t seq = 16;
  Tensor x_full = Random({seq, config.hidden}, 30);
  Tensor dy_full = Random({seq, config.hidden}, 31);

  std::vector<InventoryEntry> inventory = BuildInventory(config);
  auto qkv_name = LayerParamName(0, "self_attention.query_key_value.weight");
  auto qkv_bias_name = LayerParamName(0, "self_attention.query_key_value.bias");
  auto dense_name = LayerParamName(0, "self_attention.dense.weight");
  auto dense_bias_name = LayerParamName(0, "self_attention.dense.bias");
  auto build_store = [&] {
    ParamStore store;
    for (const InventoryEntry& e : inventory) {
      store.Add(MaterializeParam(e.param, config.init_seed, 1, 0));
    }
    return store;
  };

  Tensor y_ref;
  Tensor dx_ref;
  {
    ParamStore store = build_store();
    ParallelAttention attn(config, 1, store.Get(qkv_name), store.Get(qkv_bias_name),
                           store.Get(dense_name), store.Get(dense_bias_name));
    RunTp(1, seq, [&](int, LayerContext& ctx) {
      y_ref = attn.Forward(x_full, ctx);
      dx_ref = attn.Backward(dy_full, ctx);
    });
  }

  const int sp = 2;
  World world(sp);
  auto sp_state = world.CreateGroup({0, 1});
  std::vector<Tensor> y_parts(sp);
  std::vector<Tensor> dx_parts(sp);
  RunSpmd(sp, [&](int rank) {
    LayerContext ctx;
    World tp_world(1);
    auto tp_state = tp_world.CreateGroup({0});
    ctx.tp = ProcessGroup(tp_state, 0);
    ctx.sp = ProcessGroup(sp_state, rank);
    ctx.batch = 1;
    ctx.seq_total = static_cast<int>(seq);
    ctx.seq_local = static_cast<int>(seq) / sp;
    ctx.seq_offset = rank * ctx.seq_local;

    ParamStore store = build_store();
    ParallelAttention attn(config, 1, store.Get(qkv_name), store.Get(qkv_bias_name),
                           store.Get(dense_name), store.Get(dense_bias_name));
    Tensor x_local = x_full.Narrow(0, ctx.seq_offset, ctx.seq_local);
    Tensor dy_local = dy_full.Narrow(0, ctx.seq_offset, ctx.seq_local);
    y_parts[static_cast<size_t>(rank)] = attn.Forward(x_local, ctx);
    dx_parts[static_cast<size_t>(rank)] = attn.Backward(dy_local, ctx);
  });

  Tensor y_sp = Tensor::Concat(y_parts, 0);
  Tensor dx_sp = Tensor::Concat(dx_parts, 0);
  EXPECT_TRUE(Tensor::AllClose(y_sp, y_ref, 1e-4f, 1e-3f))
      << "max diff " << Tensor::MaxAbsDiff(y_sp, y_ref);
  EXPECT_TRUE(Tensor::AllClose(dx_sp, dx_ref, 1e-4f, 1e-3f));
}

// ---- MoE layer: both sharding modes match the serial computation ----

class MoeModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(MoeModeTest, ParallelMatchesSerial) {
  ModelConfig config = TinyMoe();
  config.moe_expert_sharding = GetParam();
  const int64_t tokens = 10;
  Tensor x = Random({tokens, config.hidden}, 40);
  Tensor dy = Random({tokens, config.hidden}, 41);

  auto params_for = [&](int tp, int rank) {
    ParamStore store;
    for (const InventoryEntry& e : BuildInventory(config)) {
      store.Add(MaterializeParam(e.param, config.init_seed, tp, rank));
    }
    return store;
  };
  auto gate_name = LayerParamName(0, "mlp.moe.gate.weight");
  auto w1_name = LayerParamName(0, "mlp.moe.experts.w1");
  auto w2_name = LayerParamName(0, "mlp.moe.experts.w2");

  Tensor y_ref;
  Tensor dx_ref;
  Tensor dgate_ref;
  {
    ParamStore store = params_for(1, 0);
    MoeMlp moe(config, 1, 0, store.Get(gate_name), store.Get(w1_name), store.Get(w2_name));
    RunTp(1, tokens, [&](int, LayerContext& ctx) {
      y_ref = moe.Forward(x, ctx);
      dx_ref = moe.Backward(dy, ctx);
    });
    dgate_ref = store.Get(gate_name)->grad.Clone();
  }

  const int tp = 2;
  std::vector<Tensor> y_parts(tp);
  std::vector<Tensor> dx_parts(tp);
  std::vector<Tensor> dgate_parts(tp);
  RunTp(tp, tokens, [&](int rank, LayerContext& ctx) {
    ParamStore store = params_for(tp, rank);
    MoeMlp moe(config, tp, rank, store.Get(gate_name), store.Get(w1_name),
               store.Get(w2_name));
    y_parts[static_cast<size_t>(rank)] = moe.Forward(x, ctx);
    dx_parts[static_cast<size_t>(rank)] = moe.Backward(dy, ctx);
    dgate_parts[static_cast<size_t>(rank)] = store.Get(gate_name)->grad.Clone();
  });

  for (int r = 0; r < tp; ++r) {
    EXPECT_TRUE(Tensor::AllClose(y_parts[static_cast<size_t>(r)], y_ref, 1e-4f, 1e-3f));
    EXPECT_TRUE(Tensor::AllClose(dx_parts[static_cast<size_t>(r)], dx_ref, 1e-4f, 1e-3f));
    // The router gradient must be identical (replicated param) across ranks.
    EXPECT_TRUE(
        Tensor::AllClose(dgate_parts[static_cast<size_t>(r)], dgate_ref, 1e-4f, 1e-3f));
  }
}

INSTANTIATE_TEST_SUITE_P(ShardingModes, MoeModeTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "expert_sharding" : "ffn_sharding";
                         });

}  // namespace
}  // namespace ucp
