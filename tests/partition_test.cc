// Partition-spec semantics: ShardOf / Unshard round trips for every pattern, including the
// Fig. 5 sub-patterns (variable-size fused-QKV sections, 3-d MoE expert tensors), plus the
// topology's rank/coordinate algebra.

#include <gtest/gtest.h>

#include "src/parallel/partition_spec.h"
#include "src/parallel/topology.h"

namespace ucp {
namespace {

Tensor Iota(Shape shape) {
  Tensor t = Tensor::Zeros(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.at(i) = static_cast<float>(i);
  }
  return t;
}

std::vector<Tensor> AllShards(const PartitionSpec& spec, const Tensor& full, int degree) {
  std::vector<Tensor> shards;
  for (int r = 0; r < degree; ++r) {
    shards.push_back(ShardOf(spec, full, degree, r));
  }
  return shards;
}

TEST(PartitionSpecTest, ReplicatedShardIsFullCopy) {
  Tensor full = Iota({4, 4});
  PartitionSpec spec = PartitionSpec::Replicated();
  Tensor shard = ShardOf(spec, full, 4, 2);
  EXPECT_TRUE(Tensor::BitEqual(shard, full));
  EXPECT_FALSE(shard.SharesStorageWith(full));
}

TEST(PartitionSpecTest, FragmentDim0RoundTrip) {
  Tensor full = Iota({8, 3});
  PartitionSpec spec = PartitionSpec::Fragment(0);
  EXPECT_EQ(ShardShape(spec, full.shape(), 4), (Shape{2, 3}));
  Tensor rebuilt = Unshard(spec, AllShards(spec, full, 4), full.shape());
  EXPECT_TRUE(Tensor::BitEqual(rebuilt, full));
}

TEST(PartitionSpecTest, FragmentDim1RoundTrip) {
  Tensor full = Iota({3, 8});
  PartitionSpec spec = PartitionSpec::Fragment(1);
  EXPECT_EQ(ShardShape(spec, full.shape(), 2), (Shape{3, 4}));
  // Shard 1 holds columns 4..7.
  Tensor shard1 = ShardOf(spec, full, 2, 1);
  EXPECT_EQ(shard1.at(0), 4.0f);
  Tensor rebuilt = Unshard(spec, AllShards(spec, full, 2), full.shape());
  EXPECT_TRUE(Tensor::BitEqual(rebuilt, full));
}

TEST(PartitionSpecTest, GqaVariableSectionsRoundTrip) {
  // Fused QKV with GQA: q = 8 rows, k = v = 2 rows, tp = 2. Each rank takes the matching
  // half of each section: rank 0 gets q[0:4], k[0:1], v[0:1].
  Tensor full = Iota({12, 3});
  PartitionSpec spec = PartitionSpec::FragmentSections(0, {8, 2, 2});
  EXPECT_EQ(ShardShape(spec, full.shape(), 2), (Shape{6, 3}));

  Tensor shard0 = ShardOf(spec, full, 2, 0);
  // Rows 0-3 (q half), row 8 (k half), row 10 (v half).
  EXPECT_EQ(shard0.at(0), 0.0f);
  EXPECT_EQ(shard0.at(4 * 3), 8.0f * 3);
  EXPECT_EQ(shard0.at(5 * 3), 10.0f * 3);

  Tensor rebuilt = Unshard(spec, AllShards(spec, full, 2), full.shape());
  EXPECT_TRUE(Tensor::BitEqual(rebuilt, full));
}

TEST(PartitionSpecTest, MoeExpert3dMiddleDimRoundTrip) {
  // w1 [E=3, ffn=4, hidden=2] partitioned on the ffn dim (Fig. 5 MoE sub-pattern).
  Tensor full = Iota({3, 4, 2});
  PartitionSpec spec = PartitionSpec::Fragment(1);
  EXPECT_EQ(ShardShape(spec, full.shape(), 2), (Shape{3, 2, 2}));
  Tensor shard1 = ShardOf(spec, full, 2, 1);
  // Expert 0, local row 0 of shard 1 = full[0][2][0] = 4.
  EXPECT_EQ(shard1.at(0), 4.0f);
  Tensor rebuilt = Unshard(spec, AllShards(spec, full, 2), full.shape());
  EXPECT_TRUE(Tensor::BitEqual(rebuilt, full));
}

TEST(PartitionSpecTest, MoeExpert3dLastDimRoundTrip) {
  Tensor full = Iota({2, 3, 6});
  PartitionSpec spec = PartitionSpec::Fragment(2);
  Tensor rebuilt = Unshard(spec, AllShards(spec, full, 3), full.shape());
  EXPECT_TRUE(Tensor::BitEqual(rebuilt, full));
}

TEST(PartitionSpecTest, ToAverageUnshardAverages) {
  PartitionSpec spec = PartitionSpec::ToAverage();
  std::vector<Tensor> replicas = {Tensor::Full({4}, 1.0f), Tensor::Full({4}, 3.0f)};
  Tensor avg = Unshard(spec, replicas, {4});
  EXPECT_TRUE(Tensor::BitEqual(avg, Tensor::Full({4}, 2.0f)));
}

TEST(PartitionSpecTest, DegreeOneIsIdentity) {
  Tensor full = Iota({5, 5});
  for (auto spec : {PartitionSpec::Fragment(0), PartitionSpec::Replicated()}) {
    Tensor shard = ShardOf(spec, full, 1, 0);
    EXPECT_TRUE(Tensor::BitEqual(shard, full));
    EXPECT_TRUE(Tensor::BitEqual(Unshard(spec, {shard}, full.shape()), full));
  }
}

TEST(PartitionSpecTest, ShardsAreDisjointAndCoverFragment) {
  Tensor full = Iota({6, 4});
  PartitionSpec spec = PartitionSpec::Fragment(0);
  auto shards = AllShards(spec, full, 3);
  double total = 0.0;
  for (const Tensor& s : shards) {
    total += s.SumAll();
  }
  EXPECT_DOUBLE_EQ(total, full.SumAll());
}

// ---------------- Property sweep: ShardOf/Unshard round trips ----------------

struct SweepCase {
  Shape shape;
  PartitionSpec spec;
  int degree;
  const char* label;
};

class ShardRoundTripSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ShardRoundTripSweep, UnshardInvertsShardOf) {
  const SweepCase& c = GetParam();
  CounterRng rng(0xABCD, static_cast<uint64_t>(c.degree));
  Tensor full = Tensor::Gaussian(c.shape, rng, 0, 1.0f);
  std::vector<Tensor> shards = AllShards(c.spec, full, c.degree);
  // Every shard has the predicted shape.
  for (const Tensor& s : shards) {
    EXPECT_EQ(s.shape(), ShardShape(c.spec, c.shape, c.degree));
  }
  Tensor rebuilt = Unshard(c.spec, shards, c.shape);
  EXPECT_TRUE(Tensor::BitEqual(rebuilt, full));
  // For fragments, shards are disjoint: total mass is conserved.
  if (c.spec.kind == PartitionKind::kFragment) {
    double total = 0.0;
    for (const Tensor& s : shards) {
      total += s.SumAll();
    }
    EXPECT_NEAR(total, full.SumAll(), 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, ShardRoundTripSweep,
    ::testing::Values(
        SweepCase{{16}, PartitionSpec::Fragment(0), 4, "vec_even4"},
        SweepCase{{12, 5}, PartitionSpec::Fragment(0), 3, "rows3"},
        SweepCase{{5, 12}, PartitionSpec::Fragment(1), 6, "cols6"},
        SweepCase{{24, 7}, PartitionSpec::FragmentSections(0, {16, 4, 4}), 2, "gqa2"},
        SweepCase{{24, 7}, PartitionSpec::FragmentSections(0, {16, 4, 4}), 4, "gqa4"},
        SweepCase{{48}, PartitionSpec::FragmentSections(0, {32, 8, 8}), 8, "gqa_bias8"},
        SweepCase{{4, 8, 6}, PartitionSpec::Fragment(1), 2, "moe_w1"},
        SweepCase{{4, 6, 8}, PartitionSpec::Fragment(2), 4, "moe_w2"},
        SweepCase{{2, 3, 4, 6}, PartitionSpec::Fragment(3), 3, "rank4_last"},
        SweepCase{{8, 8}, PartitionSpec::Replicated(), 4, "replicated"},
        SweepCase{{10, 10}, PartitionSpec::Fragment(0), 1, "degree1"}),
    [](const ::testing::TestParamInfo<SweepCase>& info) { return info.param.label; });

// ---------------- Topology ----------------

TEST(TopologyTest, CoordRankRoundTrip) {
  ParallelConfig config{2, 2, 2, 2, 0, 1};  // tp pp dp sp
  World world(config.world_size());
  Topology topo(&world, config);
  for (int r = 0; r < config.world_size(); ++r) {
    RankCoord c = topo.CoordOf(r);
    EXPECT_EQ(topo.RankOf(c), r);
  }
}

TEST(TopologyTest, TpIsFastestVarying) {
  ParallelConfig config{2, 2, 1, 1, 0, 1};
  World world(4);
  Topology topo(&world, config);
  EXPECT_EQ(topo.CoordOf(0).tp, 0);
  EXPECT_EQ(topo.CoordOf(1).tp, 1);
  EXPECT_EQ(topo.CoordOf(1).pp, 0);
  EXPECT_EQ(topo.CoordOf(2).pp, 1);
}

TEST(TopologyTest, GroupsPartitionTheWorld) {
  ParallelConfig config{2, 2, 2, 1, 1, 1};
  World world(8);
  Topology topo(&world, config);
  for (int r = 0; r < 8; ++r) {
    auto groups = topo.GroupsFor(r);
    EXPECT_EQ(groups.tp.size(), 2);
    EXPECT_EQ(groups.pp.size(), 2);
    EXPECT_EQ(groups.dp.size(), 2);
    EXPECT_EQ(groups.sp.size(), 1);
    EXPECT_EQ(groups.world.size(), 8);
    // The rank's own coordinate appears at its index within each group.
    RankCoord c = topo.CoordOf(r);
    EXPECT_EQ(groups.tp.index(), c.tp);
    EXPECT_EQ(groups.dp.index(), c.dp);
  }
}

TEST(TopologyTest, StageNeighbours) {
  ParallelConfig config{1, 4, 1, 1, 0, 1};
  World world(4);
  Topology topo(&world, config);
  EXPECT_EQ(topo.NextStageRank(0), 1);
  EXPECT_EQ(topo.PrevStageRank(3), 2);
}

TEST(TopologyTest, EmbeddingTieGroupSpansFirstAndLastStage) {
  ParallelConfig config{1, 3, 2, 1, 0, 1};
  World world(6);
  Topology topo(&world, config);
  for (int r = 0; r < 6; ++r) {
    auto groups = topo.GroupsFor(r);
    RankCoord c = topo.CoordOf(r);
    if (c.pp == 0 || c.pp == 2) {
      ASSERT_TRUE(groups.embedding_tie.valid());
      EXPECT_EQ(groups.embedding_tie.size(), 2);
    } else {
      EXPECT_FALSE(groups.embedding_tie.valid());
    }
  }
}

TEST(TopologyTest, LayerSplitEvenAndRemainder) {
  EXPECT_EQ(SplitLayersAcrossStages(8, 4),
            (std::vector<std::pair<int, int>>{{0, 2}, {2, 2}, {4, 2}, {6, 2}}));
  EXPECT_EQ(SplitLayersAcrossStages(7, 3),
            (std::vector<std::pair<int, int>>{{0, 3}, {3, 2}, {5, 2}}));
}

TEST(ParallelConfigTest, JsonRoundTrip) {
  ParallelConfig config{2, 4, 2, 1, 3, 4};
  Result<ParallelConfig> back = ParallelConfig::FromJson(config.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, config);
  EXPECT_EQ(config.ToString(), "TP2.PP4.DP2.SP1.Z3");
}

// ---------------------------------------------------------------------------
// ShardRuns at large worlds. A 512-rank world factors into TP x PP x DP as e.g.
// TP512, TP128.PP2.DP2, TP32.PP4.DP4, TP8.PP8.DP8 or TP2.PP16.DP16 — the run
// decomposition only ever sees the TP degree, so the property is checked at
// every TP degree those factorizations produce, for every rank. Pure arithmetic
// over specs and shapes: no payload I/O, no files.
// ---------------------------------------------------------------------------

// The ShardRuns contract: for every rank, runs tile the rank's shard contiguously
// (ascending shard_offset with no gaps), full offsets are strictly ascending and
// non-overlapping, and every run's elements are bit-equal to the ShardOf copy.
// For fragment specs the ranks' runs must additionally cover the full tensor
// exactly once.
void CheckShardRunsProperty(const PartitionSpec& spec, const Tensor& full, int degree) {
  SCOPED_TRACE("kind=" + std::string(PartitionKindName(spec.kind)) +
               " dim=" + std::to_string(spec.dim) + " degree=" + std::to_string(degree));
  std::vector<int> coverage(static_cast<size_t>(full.numel()), 0);
  for (int rank = 0; rank < degree; ++rank) {
    Tensor shard = ShardOf(spec, full, degree, rank);
    std::vector<ShardRun> runs = ShardRuns(spec, full.shape(), degree, rank);
    int64_t tiled = 0;
    int64_t prev_full_end = -1;
    for (const ShardRun& run : runs) {
      ASSERT_GT(run.numel, 0);
      ASSERT_EQ(run.shard_offset, tiled) << "rank " << rank << " leaves a gap in its shard";
      ASSERT_GT(run.full_offset, prev_full_end) << "rank " << rank << " runs not ascending";
      ASSERT_LE(run.full_offset + run.numel, full.numel());
      for (int64_t i = 0; i < run.numel; ++i) {
        ASSERT_EQ(shard.at(run.shard_offset + i), full.at(run.full_offset + i))
            << "rank " << rank << " run mismatch at element " << i;
        ++coverage[static_cast<size_t>(run.full_offset + i)];
      }
      tiled += run.numel;
      prev_full_end = run.full_offset + run.numel - 1;
    }
    ASSERT_EQ(tiled, shard.numel()) << "rank " << rank << " runs do not tile its shard";
  }
  if (spec.kind == PartitionKind::kFragment) {
    for (size_t i = 0; i < coverage.size(); ++i) {
      ASSERT_EQ(coverage[i], 1) << "full element " << i << " covered " << coverage[i]
                                << " times across ranks";
    }
  } else {
    // Replicated / to-average: every rank covers the whole tensor once.
    for (size_t i = 0; i < coverage.size(); ++i) {
      ASSERT_EQ(coverage[i], degree);
    }
  }
}

TEST(ShardRunsPropertyTest, HoldsAtEveryTpDegreeOfA512RankWorld) {
  const std::vector<int> degrees = {2, 8, 32, 128, 512};
  for (int degree : degrees) {
    // dim-0 fragment: one pread-sized run per rank.
    CheckShardRunsProperty(PartitionSpec::Fragment(0), Iota({1024, 3}), degree);
    // dim-1 fragment: strided gather, one run per leading row.
    CheckShardRunsProperty(PartitionSpec::Fragment(1), Iota({4, 1024}), degree);
    // Fused-QKV sections, each divisible by the largest degree.
    CheckShardRunsProperty(PartitionSpec::FragmentSections(0, {2048, 512, 512}),
                           Iota({3072, 2}), degree);
    // 3-d MoE expert tensor split on an inner dim.
    CheckShardRunsProperty(PartitionSpec::Fragment(1), Iota({4, 512, 2}), degree);
  }
}

TEST(ShardRunsPropertyTest, ReplicatedSpecsYieldIdentityRunsAtLargeDegree) {
  for (const PartitionSpec& spec : {PartitionSpec::Replicated(), PartitionSpec::ToAverage()}) {
    Tensor full = Iota({16, 8});
    std::vector<ShardRun> runs = ShardRuns(spec, full.shape(), 512, 511);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].shard_offset, 0);
    EXPECT_EQ(runs[0].full_offset, 0);
    EXPECT_EQ(runs[0].numel, full.numel());
    CheckShardRunsProperty(spec, full, 32);
  }
}

TEST(ParallelConfigTest, MalformedJsonRejected) {
  Json bad = *Json::Parse(R"({"tp":0,"pp":1,"dp":1,"sp":1,"zero_stage":0,"micro_batches":1})");
  EXPECT_FALSE(ParallelConfig::FromJson(bad).ok());
  Json bad_stage =
      *Json::Parse(R"({"tp":1,"pp":1,"dp":1,"sp":1,"zero_stage":7,"micro_batches":1})");
  EXPECT_FALSE(ParallelConfig::FromJson(bad_stage).ok());
}

}  // namespace
}  // namespace ucp
