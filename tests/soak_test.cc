// The scale & soak suite: randomized fault-schedule soaks (fixed seeds, bit-identical
// replay), large-world stress flatness, and the multi-job shared-store isolation matrix.
//
// Two ctest populations live in this binary. The quick suite (label `soak`) runs fixed
// seeds and small worlds inside the default tier. Every SoakLong* test skips unless
// UCP_SOAK_LONG=1 is set — run the long population with
//   UCP_SOAK_LONG=1 ctest -L soak_long --output-on-failure

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/comm/rank_fault.h"
#include "src/common/fault_fs.h"
#include "src/common/fs.h"
#include "src/model/config.h"
#include "src/obs/trace.h"
#include "src/runtime/trainer.h"
#include "src/soak/driver.h"
#include "src/soak/invariants.h"
#include "src/soak/multi_job.h"
#include "src/soak/schedule.h"
#include "src/soak/stress.h"

namespace ucp {
namespace {

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

class SoakTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = *MakeTempDir("ucp_soak"); }
  void TearDown() override {
    DisarmRankFaults();  // never leak an armed injector into another test
    DisarmFaults();
    SetIoRetryPolicy(IoRetryPolicy{});
    ResetIoRetryStats();
    ASSERT_TRUE(RemoveAll(dir_).ok());
  }

  std::string Sub(const std::string& name) { return PathJoin(dir_, name); }

  SoakOptions OptionsForSeed(uint64_t seed) {
    SoakOptions options;
    options.seed = seed;
    options.dir = Sub("seed" + std::to_string(seed));
    return options;
  }

  // One fixed-seed soak: generate, verify the >= 3 injector-type guarantee, execute, and
  // require a clean run — zero invariant violations with the full log as the counterexample.
  void RunSeedExpectClean(uint64_t seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SoakOptions options = OptionsForSeed(seed);
    std::vector<SoakEvent> events = GenerateSoakSchedule(options);
    EXPECT_GE(ScheduleInjectorKinds(events).size(), 3u)
        << "schedule for seed " << seed << " composes too few injector types";
    SoakRunReport report = RunSoakSchedule(options, events);
    EXPECT_TRUE(report.ok) << report.status.ToString();
    EXPECT_TRUE(report.violations.empty()) << JoinLines(report.violations) << "\nfull log:\n"
                                           << report.LogText();
    EXPECT_GT(report.invariant_checks, 0);
    EXPECT_GT(report.iterations_trained, 0);
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

TEST(SoakScheduleTest, GenerationIsDeterministicInTheSeed) {
  SoakOptions options;
  options.seed = 42;
  const std::vector<SoakEvent> a = GenerateSoakSchedule(options);
  const std::vector<SoakEvent> b = GenerateSoakSchedule(options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToJson().Dump(0), b[i].ToJson().Dump(0)) << "event " << i;
  }

  options.seed = 43;
  const std::vector<SoakEvent> c = GenerateSoakSchedule(options);
  bool any_difference = a.size() != c.size();
  for (size_t i = 0; !any_difference && i < a.size(); ++i) {
    any_difference = a[i].ToJson().Dump(0) != c[i].ToJson().Dump(0);
  }
  EXPECT_TRUE(any_difference) << "seeds 42 and 43 generated identical schedules";
}

TEST(SoakScheduleTest, EverySeedComposesAtLeastThreeInjectorTypes) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    SoakOptions options;
    options.seed = seed;
    const std::vector<SoakEvent> events = GenerateSoakSchedule(options);
    const std::vector<std::string> kinds = ScheduleInjectorKinds(events);
    EXPECT_GE(kinds.size(), 3u) << "seed " << seed << ": " << JoinLines(kinds);
  }
}

TEST(SoakScheduleTest, EventJsonRoundTripsEveryKind) {
  std::vector<SoakEvent> events;
  {
    SoakEvent e;
    e.kind = SoakEventKind::kTrain;
    e.iterations = 7;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kRankKill;
    e.kill_rank_raw = 0xdeadbeefcafeULL;
    e.kill_iter_raw = 17;
    e.kill_site = 3;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kFsFault;
    e.fs_kind = static_cast<int>(FaultPlan::Kind::kTornWrite);
    e.fs_op = static_cast<int>(FsOp::kWrite);
    e.fs_nth = 4;
    e.fs_path_substr = "_optim_states";
    e.fs_seed = 99;
    e.fs_fail_count = 2;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kGc;
    e.keep_last = 2;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kBackpressure;
    e.max_in_flight = 3;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kFsck;
    events.push_back(e);
  }
  for (const SoakEvent& event : events) {
    Result<SoakEvent> back = SoakEvent::FromJson(event.ToJson());
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(back->ToJson().Dump(0), event.ToJson().Dump(0))
        << SoakEventKindName(event.kind);
  }
}

TEST(SoakScheduleTest, OptionsJsonExcludesMachineLocalBindings) {
  SoakOptions options;
  options.seed = 5;
  options.num_blocks = 6;
  options.job = "alpha";
  options.dir = "/tmp/somewhere";
  options.log_path = "/tmp/somewhere.jsonl";
  Result<SoakOptions> back = SoakOptions::FromJson(options.ToJson());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->seed, 5u);
  EXPECT_EQ(back->num_blocks, 6);
  EXPECT_EQ(back->job, "alpha");
  EXPECT_EQ(back->strategy, options.strategy);
  // dir / log_path are runtime bindings, not schedule identity — they must not replay.
  EXPECT_TRUE(back->dir.empty());
  EXPECT_TRUE(back->log_path.empty());
}

// ---------------------------------------------------------------------------
// Fixed-seed soak runs: 20 seeds, batched for ctest -j parallelism. Every
// schedule composes >= 3 injector types and must finish with zero invariant
// violations.
// ---------------------------------------------------------------------------

TEST_F(SoakTest, FixedSeedsBatch1) {
  for (uint64_t seed : {1, 2, 3, 4}) RunSeedExpectClean(seed);
}

TEST_F(SoakTest, FixedSeedsBatch2) {
  for (uint64_t seed : {5, 6, 7, 8}) RunSeedExpectClean(seed);
}

TEST_F(SoakTest, FixedSeedsBatch3) {
  for (uint64_t seed : {9, 10, 11, 12}) RunSeedExpectClean(seed);
}

TEST_F(SoakTest, FixedSeedsBatch4) {
  for (uint64_t seed : {13, 14, 15, 16}) RunSeedExpectClean(seed);
}

TEST_F(SoakTest, FixedSeedsBatch5) {
  for (uint64_t seed : {17, 18, 19, 20}) RunSeedExpectClean(seed);
}

// ---------------------------------------------------------------------------
// Replay: a failure log re-executes bit-identically in a fresh directory.
// ---------------------------------------------------------------------------

TEST_F(SoakTest, GeneratedScheduleReplaysBitIdentically) {
  SoakOptions options = OptionsForSeed(21);
  options.log_path = Sub("run.jsonl");
  SoakRunReport report = RunSoak(options);
  ASSERT_TRUE(report.ok) << report.status.ToString();
  ASSERT_TRUE(report.violations.empty()) << JoinLines(report.violations);

  // The log written to disk is the same bytes the report carries.
  Result<std::string> on_disk = ReadFileToString(options.log_path);
  ASSERT_TRUE(on_disk.ok()) << on_disk.status();
  EXPECT_EQ(*on_disk, report.LogText());

  Result<SoakRunReport> replay = ReplaySoakLog(report.LogText(), Sub("replay"));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->LogText(), report.LogText());
}

TEST_F(SoakTest, HandBuiltCorruptionScheduleReplaysBitIdentically) {
  // A deliberately nasty hand-written schedule: torn write into the optimizer shards, a
  // retention sweep over the damage, an integrity scan, then more training. Corruption is
  // *expected* here — the invariants must account for it, not flag it.
  SoakOptions options;
  options.seed = 7777;
  options.dir = Sub("hand");

  std::vector<SoakEvent> events;
  {
    SoakEvent e;
    e.kind = SoakEventKind::kTrain;
    e.iterations = 3;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kFsFault;
    e.fs_kind = static_cast<int>(FaultPlan::Kind::kTornWrite);
    e.fs_op = static_cast<int>(FsOp::kWrite);
    e.fs_nth = 1;
    e.fs_path_substr = "_optim_states";
    e.fs_seed = 11;
    e.fs_fail_count = 1;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kTrain;
    e.iterations = 2;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kGc;
    e.keep_last = 1;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kFsck;
    events.push_back(e);
  }
  {
    SoakEvent e;
    e.kind = SoakEventKind::kTrain;
    e.iterations = 2;
    events.push_back(e);
  }

  SoakRunReport report = RunSoakSchedule(options, events);
  ASSERT_TRUE(report.ok) << report.status.ToString();
  EXPECT_TRUE(report.violations.empty()) << JoinLines(report.violations) << "\nfull log:\n"
                                         << report.LogText();

  Result<SoakRunReport> replay = ReplaySoakLog(report.LogText(), Sub("hand_replay"));
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(replay->LogText(), report.LogText());
}

TEST_F(SoakTest, ParseSoakLogRecoversOptionsAndEvents) {
  SoakOptions options = OptionsForSeed(22);
  std::vector<SoakEvent> events = GenerateSoakSchedule(options);
  SoakRunReport report = RunSoakSchedule(options, events);
  ASSERT_TRUE(report.ok) << report.status.ToString();

  Result<SoakLog> parsed = ParseSoakLog(report.LogText());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->options.seed, options.seed);
  EXPECT_EQ(parsed->options.job, options.job);
  EXPECT_TRUE(parsed->options.dir.empty());  // logs carry no absolute paths
  ASSERT_EQ(parsed->events.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed->events[i].ToJson().Dump(0), events[i].ToJson().Dump(0)) << "event " << i;
  }
}

TEST(SoakReplayParseTest, RejectsTextWithoutHeader) {
  EXPECT_FALSE(ParseSoakLog("").ok());
  EXPECT_FALSE(ParseSoakLog("{\"type\":\"soak_event\"}\n").ok());
  EXPECT_FALSE(ParseSoakLog("not json at all\n").ok());
}

// ---------------------------------------------------------------------------
// Job-scoped retention and debris sweeps: the regression matrix behind the
// namespace isolation comment in src/ckpt/checkpoint.h.
// ---------------------------------------------------------------------------

TEST_F(SoakTest, GcAndStagingSweepsAreJobScoped) {
  TrainerConfig config;
  config.model = TinyGpt();
  config.strategy = ParallelConfig{1, 1, 1, 1, 0, 1};
  config.global_batch = 8;
  TrainingRun run(config);
  run.Run([&](RankTrainer& trainer) {
    for (int64_t iteration : {1, 2}) {
      ASSERT_TRUE(SaveDistributedCheckpoint(dir_, trainer, iteration, "jobA").ok());
      ASSERT_TRUE(SaveDistributedCheckpoint(dir_, trainer, iteration, "jobB").ok());
    }
    ASSERT_TRUE(SaveDistributedCheckpoint(dir_, trainer, 1).ok());  // default namespace
  });

  // Crash debris in three namespaces.
  ASSERT_TRUE(MakeDirs(Sub("jobA.global_step9.staging")).ok());
  ASSERT_TRUE(MakeDirs(Sub("jobB.global_step7.ucp.staging")).ok());
  ASSERT_TRUE(MakeDirs(Sub("global_step9.staging")).ok());

  // jobA's sweep removes exactly its own debris.
  Result<int> swept = CleanStagingDebris(dir_, "jobA");
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_EQ(*swept, 1);
  EXPECT_FALSE(DirExists(Sub("jobA.global_step9.staging")));
  EXPECT_TRUE(DirExists(Sub("jobB.global_step7.ucp.staging")));
  EXPECT_TRUE(DirExists(Sub("global_step9.staging")));

  // The default namespace's sweep leaves jobB alone too.
  ASSERT_TRUE(CleanStagingDebris(dir_).ok());
  EXPECT_TRUE(DirExists(Sub("jobB.global_step7.ucp.staging")));
  EXPECT_FALSE(DirExists(Sub("global_step9.staging")));

  // jobA's retention deletes only jobA's oldest tag.
  Result<GcReport> gc = GcCheckpoints(dir_, /*keep_last=*/1, /*dry_run=*/false, "jobA");
  ASSERT_TRUE(gc.ok()) << gc.status();
  ASSERT_EQ(gc->removed.size(), 1u);
  EXPECT_EQ(gc->removed[0], "jobA.global_step1");
  EXPECT_EQ(*ListCheckpointTags(dir_, "jobA"), (std::vector<std::string>{"jobA.global_step2"}));
  EXPECT_EQ(ListCheckpointTags(dir_, "jobB")->size(), 2u);
  EXPECT_EQ(ListCheckpointTags(dir_)->size(), 1u);

  // Store-wide listing still sees every namespace.
  EXPECT_EQ(ListAllCheckpointTags(dir_)->size(), 4u);
}

// ---------------------------------------------------------------------------
// Multi-job store isolation
// ---------------------------------------------------------------------------

TEST_F(SoakTest, FourConcurrentJobsOnOneStoreStayIsolated) {
  MultiJobOptions options;
  options.dir = Sub("store");
  MultiJobReport report = RunMultiJobSoak(options);

  EXPECT_TRUE(report.ok()) << JoinLines(report.violations);
  EXPECT_TRUE(report.fault_fired);
  ASSERT_EQ(report.jobs.size(), 4u);
  for (const MultiJobReport::JobResult& job : report.jobs) {
    EXPECT_TRUE(job.ok) << job.job << ": " << job.status.ToString();
    EXPECT_TRUE(job.deep_valid) << job.job;
    EXPECT_TRUE(job.reloaded) << job.job;
    EXPECT_GT(job.committed_tags, 0) << job.job;
    // Retention ran per job: at most keep_last committed tags survive.
    EXPECT_LE(job.committed_tags, options.keep_last) << job.job;
  }
  // The audit attributed real I/O to every job and saw no cross-job access.
  EXPECT_TRUE(report.audit.violations.empty());
  EXPECT_EQ(report.audit.ops_per_bucket.size(), 4u);
}

// The same soak with every job's save path routed through one live in-process daemon:
// the engines flush over RemoteStore connections while the path-scoped torn-write fault
// fires inside the daemon's own session threads (server-side injection). Isolation,
// fault fallback, and retention must hold exactly as in the direct-FS run.
TEST_F(SoakTest, ConcurrentJobsThroughOneDaemonStayIsolated) {
  MultiJobOptions options;
  options.dir = Sub("daemon_store");
  options.jobs = 3;
  options.through_daemon = true;
  MultiJobReport report = RunMultiJobSoak(options);

  EXPECT_TRUE(report.ok()) << JoinLines(report.violations);
  EXPECT_TRUE(report.fault_fired);
  ASSERT_EQ(report.jobs.size(), 3u);
  for (const MultiJobReport::JobResult& job : report.jobs) {
    EXPECT_TRUE(job.ok) << job.job << ": " << job.status.ToString();
    EXPECT_TRUE(job.deep_valid) << job.job;
    EXPECT_TRUE(job.reloaded) << job.job;
    EXPECT_GT(job.committed_tags, 0) << job.job;
    EXPECT_LE(job.committed_tags, options.keep_last) << job.job;
  }
  // Every job's files saw real (server-side) I/O, and no thread that declared a job
  // identity ever touched a sibling's files.
  EXPECT_TRUE(report.audit.violations.empty());
  EXPECT_EQ(report.audit.ops_per_bucket.size(), 3u);
}

// ---------------------------------------------------------------------------
// Large-world stress flatness: per-rank footprint at 128 ranks stays within 2x
// of the 32-rank baseline.
// ---------------------------------------------------------------------------

TEST(SoakStressTest, FootprintStaysFlatFrom32To128Ranks) {
  // A small orphan limit makes the boundedness claim binding: 32x2 = 64 exited rank
  // threads already exceed it, so a registry that retained one ring per exited thread
  // forever would fail the flatness check immediately.
  obs::SetTraceOrphanRingLimit(48);

  StressOptions base;
  base.ranks = 32;
  StressReport small = RunLargeWorldStress(base);

  StressOptions big = base;
  big.ranks = 128;
  StressReport large = RunLargeWorldStress(big);

  obs::SetTraceOrphanRingLimit(512);  // restore the default

  // Ring registry is bounded by the orphan limit, not O(rounds x ranks).
  EXPECT_LE(large.trace_rings, small.trace_rings + 8)
      << "trace rings grew with world size: " << small.trace_rings << " -> "
      << large.trace_rings;

  // Drop rate at 4x the world stays within 2x of the baseline (epsilon for a 0 baseline).
  EXPECT_LE(large.trace_drop_rate, 2.0 * small.trace_drop_rate + 0.01)
      << small.trace_drop_rate << " -> " << large.trace_drop_rate;

  // Cache misses don't scale with ranks: every rank asks for the same slice keys, so the
  // extra 96 ranks dedup onto existing loads (stats are process-cumulative — compare deltas).
  EXPECT_LE(large.cache_misses - small.cache_misses,
            static_cast<uint64_t>(big.rounds * big.cache_slices));

  // Peak RSS at 4x the world stays within 2x of the baseline reading (VmHWM is monotone,
  // so this bounds the *additional* footprint of the larger world).
  if (small.peak_rss_kb > 0) {
    EXPECT_LE(large.peak_rss_kb, 2 * small.peak_rss_kb)
        << small.peak_rss_kb << " kB -> " << large.peak_rss_kb << " kB";
  }
}

// ---------------------------------------------------------------------------
// Long soak population (label soak_long): skipped unless UCP_SOAK_LONG=1.
// ---------------------------------------------------------------------------

bool LongSoakEnabled() { return std::getenv("UCP_SOAK_LONG") != nullptr; }

class SoakLongTest : public SoakTest {};

TEST_F(SoakLongTest, TwentyDeepSchedules) {
  if (!LongSoakEnabled()) GTEST_SKIP() << "set UCP_SOAK_LONG=1 to run the long soak";
  for (uint64_t seed = 101; seed <= 120; ++seed) {
    SoakOptions options = OptionsForSeed(seed);
    options.num_blocks = 6;
    options.max_kills = 3;
    std::vector<SoakEvent> events = GenerateSoakSchedule(options);
    EXPECT_GE(ScheduleInjectorKinds(events).size(), 3u) << "seed " << seed;
    SoakRunReport report = RunSoakSchedule(options, events);
    EXPECT_TRUE(report.ok) << "seed " << seed << ": " << report.status.ToString();
    EXPECT_TRUE(report.violations.empty())
        << "seed " << seed << ":\n" << JoinLines(report.violations);
  }
}

TEST_F(SoakLongTest, StressAt512Ranks) {
  if (!LongSoakEnabled()) GTEST_SKIP() << "set UCP_SOAK_LONG=1 to run the long soak";
  obs::SetTraceOrphanRingLimit(48);
  StressOptions base;
  base.ranks = 32;
  base.rounds = 3;
  StressReport small = RunLargeWorldStress(base);
  StressOptions big = base;
  big.ranks = 512;
  StressReport large = RunLargeWorldStress(big);
  obs::SetTraceOrphanRingLimit(512);

  EXPECT_LE(large.trace_rings, small.trace_rings + 8);
  EXPECT_LE(large.trace_drop_rate, 2.0 * small.trace_drop_rate + 0.01);
  if (small.peak_rss_kb > 0) {
    EXPECT_LE(large.peak_rss_kb, 2 * small.peak_rss_kb);
  }
}

TEST_F(SoakLongTest, EightJobsOnOneStore) {
  if (!LongSoakEnabled()) GTEST_SKIP() << "set UCP_SOAK_LONG=1 to run the long soak";
  MultiJobOptions options;
  options.dir = Sub("store8");
  options.jobs = 8;
  options.phases = 3;
  MultiJobReport report = RunMultiJobSoak(options);
  EXPECT_TRUE(report.ok()) << JoinLines(report.violations);
}

}  // namespace
}  // namespace ucp
