// ucp_tool — command-line front end for the UCP library (the analogue of DeepSpeed's
// ds_to_universal.py plus inspection helpers).
//
//   ucp_tool convert  <ckpt_dir> <tag> <ucp_dir> [--threads N] [--spec FILE]
//       Convert a native distributed checkpoint to UCP atom checkpoints. With --spec, the
//       pattern library is parsed from a UCP-language text file instead of being generated.
//
//   ucp_tool convert-foreign <foreign_dir> <tag> <ucp_dir> [--threads N]
//       Ingest a foreign (DDP-style consolidated) checkpoint.
//
//   ucp_tool inspect  <ucp_dir>
//       Print the UCP manifest: model config, source strategy, iteration, and per-atom
//       shapes/sizes.
//
//   ucp_tool inspect-ckpt <ckpt_dir> <tag>
//       Print a native checkpoint's metadata and shard files.
//
//   ucp_tool spec     <ckpt_dir> <tag>
//       Print the generated UCP pattern spec for a checkpoint's source strategy (a starting
//       point for hand-edited specs).
//
//   ucp_tool plan     <ucp_dir> <tp> <pp> <dp> <sp> <zero_stage> [rank]
//       Print the GenUcpMetadata load plan (JSON) for one target rank.
//
//   ucp_tool fsck     <path> [--quarantine] [--fast] [--threads N]
//       Walk a checkpoint root (every tag, cached .ucp dirs, the latest pointer, staging
//       debris) or a single UCP atom directory, verifying CRCs and manifest agreement.
//       Exits 0 when clean, 1 when damage was found. With --quarantine, damaged
//       tags/UCP dirs are renamed to <name>.quarantined so resumes skip them, a one-line
//       summary of what was renamed is printed, and the exit code distinguishes 0 clean /
//       1 repaired (intact checkpoints remain) / 2 unrecoverable (a rename failed or no
//       usable checkpoint is left). --fast
//       checks headers and metadata only (no payload CRC verification); file checks fan
//       out over --threads workers.
//
//   ucp_tool stat     <ucp_dir | tag_dir>
//       Header-only report of a UCP checkpoint: per-atom shape, bytes, and CRC chunk
//       counts (reads tensor headers only — no payload I/O). Pointed at a native tag
//       directory holding a chunk manifest (an incremental save), prints the manifest
//       instead: parent tag, chunk size, and each file's size / chunk / inherited counts.
//
//   ucp_tool du [--store ENDPOINT | <ckpt_dir>]
//       Space accounting per tag: logical bytes (what a reader sees) vs physical bytes
//       (what the tag added to the store), dedup savings, and the compression ratio of
//       the chunk objects the tag introduced. Chunk objects are attributed to the first
//       tag, in commit order, that references them.
//
//   ucp_tool metrics  [--store ENDPOINT | <subcommand> <args...>]
//       With --store, fetch a live daemon's metrics page over the wire (v4
//       METRICS_DUMP) and print both the text table and the Prometheus exposition.
//       Otherwise run the nested subcommand, then print the process metrics registry
//       (src/obs/metrics.h) as text. Metrics are process-local, so wrapping the command
//       is how a CLI run gets a non-empty snapshot; with no nested command it prints
//       whatever the (fresh) process has — useful to list registered metric names.
//
//   ucp_tool trace-merge <client.json> <server.json> [<out.json>]
//       Stitch a client-side trace export and a daemon-side export (flight record or
//       --trace=FILE) into one Chrome/Perfetto trace: distinct process tracks, server
//       clocks aligned to the client's, and flow arrows linking each client RPC span to
//       its server handling span. Writes to <out.json> or stdout.
//
//   ucp_tool trace-cat <file>
//       Summarize a Chrome trace JSON (as written by --trace=FILE or the flight
//       recorder): per-process event counts and a per-span-name table of count/total/mean
//       wall time, sorted by total.
//
//   ucp_tool soak-replay <failure.jsonl> [<replay_dir>]
//       Deterministically re-execute a soak failure log (tests/soak_test.cc, docs/soak.md)
//       against a fresh directory (or <replay_dir>) and diff the regenerated log against
//       the input. Exits 0 when the replay is byte-identical, 1 on divergence or replayed
//       invariant violations.
//
//   ucp_tool tags [--store ENDPOINT | <ckpt_dir>]
//       List every checkpoint tag in the store with its commit status and the `latest`
//       pointer(s).
//
//   ucp_tool help
//       Print this usage text to stdout and exit 0.
//
// Store-aware subcommands (tags, gc, inspect-ckpt) accept `--store unix:/path` or
// `--store tcp:host:port` in place of <ckpt_dir> to run against a live ucp_serverd
// (docs/store.md). Every subcommand prints usage to stderr and exits 2 on bad arguments;
// operational failures exit 1.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/ckpt/checkpoint.h"
#include "src/common/fs.h"
#include "src/common/json.h"
#include "src/store/chunk_index.h"
#include "src/store/chunk_manifest.h"
#include "src/store/remote_store.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_merge.h"
#include "src/soak/driver.h"
#include "src/tensor/tensor_file.h"
#include "src/ucp/converter.h"
#include "src/ucp/loader.h"
#include "src/ucp/validate.h"

namespace ucp {
namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  ucp_tool convert <ckpt_dir> <tag> <ucp_dir> [--threads N] [--spec FILE]\n"
               "  ucp_tool convert-foreign <foreign_dir> <tag> <ucp_dir> [--threads N]\n"
               "  ucp_tool inspect <ucp_dir>\n"
               "  ucp_tool inspect-ckpt [--store ENDPOINT | <ckpt_dir>] <tag>\n"
               "  ucp_tool spec <ckpt_dir> <tag>\n"
               "  ucp_tool plan <ucp_dir> <tp> <pp> <dp> <sp> <zero_stage> [rank]\n"
               "  ucp_tool validate <ucp_dir>\n"
               "  ucp_tool validate-ckpt <ckpt_dir> <tag>\n"
               "  ucp_tool fsck <path> [--quarantine] [--fast] [--threads N]\n"
               "  ucp_tool stat <ucp_dir | tag_dir>\n"
               "  ucp_tool du [--store ENDPOINT | <ckpt_dir>]\n"
               "  ucp_tool tags [--store ENDPOINT | <ckpt_dir>]\n"
               "  ucp_tool prune <ckpt_dir> <keep_last>\n"
               "  ucp_tool gc [--store ENDPOINT | <ckpt_dir>] <keep_last> [--dry-run]\n"
               "  ucp_tool ping --store ENDPOINT\n"
               "  ucp_tool metrics [--store ENDPOINT | <subcommand> <args...>]\n"
               "  ucp_tool trace-merge <client.json> <server.json> [<out.json>]\n"
               "  ucp_tool trace-cat <file>\n"
               "  ucp_tool soak-replay <failure.jsonl> [<replay_dir>]\n"
               "  ucp_tool help\n"
               "\n"
               "ENDPOINT is unix:/path or tcp:host:port, naming a running ucp_serverd.\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

struct Flags {
  int threads = 4;
  std::string spec_file;
  std::string store;  // remote endpoint for store-aware subcommands
  bool quarantine = false;
  bool fast = false;
  bool dry_run = false;
  std::string bad_flag;  // first unknown/malformed --flag, "" when parsing was clean
  std::vector<std::string> positional;
};

// Strict integer parse for positional numeric arguments — `ucp_tool gc dir x` must be a
// usage error, not atoi's silent 0.
bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || parsed < INT_MIN || parsed > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

Flags ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      if (!ParseInt(argv[++i], &flags.threads)) {
        flags.bad_flag = "--threads";
      }
    } else if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) {
      flags.spec_file = argv[++i];
    } else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) {
      flags.store = argv[++i];
    } else if (std::strncmp(argv[i], "--store=", 8) == 0) {
      flags.store = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--quarantine") == 0) {
      flags.quarantine = true;
    } else if (std::strcmp(argv[i], "--fast") == 0) {
      flags.fast = true;
    } else if (std::strcmp(argv[i], "--dry-run") == 0) {
      flags.dry_run = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      // A flag no subcommand knows (or one missing its value). Treating it as a positional
      // used to surface as a confusing downstream error; it is a usage error.
      if (flags.bad_flag.empty()) {
        flags.bad_flag = argv[i];
      }
    } else {
      flags.positional.push_back(argv[i]);
    }
  }
  return flags;
}

// Opens the store a subcommand addresses: --store dials a daemon, otherwise the first
// positional is a local directory (consumed from `positional`). nullptr = usage error.
std::shared_ptr<Store> OpenToolStore(Flags& flags, Status* error) {
  if (!flags.store.empty()) {
    Result<std::shared_ptr<Store>> opened = OpenStore(flags.store);
    if (!opened.ok()) {
      *error = opened.status();
      return nullptr;
    }
    return *opened;
  }
  if (flags.positional.empty()) {
    return nullptr;  // neither --store nor a directory: usage error
  }
  std::shared_ptr<Store> store = std::make_shared<LocalStore>(flags.positional.front());
  flags.positional.erase(flags.positional.begin());
  return store;
}

// One-tag chunk-manifest summary, shared by `inspect-ckpt` and `stat` on a native tag
// directory: parent provenance, chunk granularity, and per-file chunk/inherited counts.
void PrintChunkManifest(const ChunkManifest& manifest) {
  std::printf("  chunk manifest: parent=%s  chunk_bytes=%llu  files=%zu\n",
              manifest.parent.empty() ? "(none: cold save)" : manifest.parent.c_str(),
              static_cast<unsigned long long>(manifest.chunk_bytes), manifest.files.size());
  for (const ChunkManifestEntry& entry : manifest.files) {
    std::printf("    %-52s %12llu bytes %6zu chunks %6llu inherited\n", entry.name.c_str(),
                static_cast<unsigned long long>(entry.size), entry.chunks.size(),
                static_cast<unsigned long long>(entry.inherited));
  }
}

int CmdConvert(const Flags& flags, bool foreign) {
  if (flags.positional.size() != 3) {
    return Usage();
  }
  ConvertOptions options;
  options.num_threads = flags.threads;
  PatternLibrary library;
  if (!flags.spec_file.empty()) {
    Result<std::string> text = ReadFileToString(flags.spec_file);
    if (!text.ok()) {
      return Fail(text.status());
    }
    Result<PatternLibrary> parsed = PatternLibrary::FromSpec(*text);
    if (!parsed.ok()) {
      return Fail(parsed.status());
    }
    library = *parsed;
    options.library = &library;
  }
  Result<ConvertStats> stats =
      foreign ? ConvertForeignToUcp(flags.positional[0], flags.positional[1],
                                    flags.positional[2], options)
              : ConvertToUcp(flags.positional[0], flags.positional[1], flags.positional[2],
                             options);
  if (!stats.ok()) {
    return Fail(stats.status());
  }
  std::printf("converted %s/%s -> %s\n", flags.positional[0].c_str(),
              flags.positional[1].c_str(), flags.positional[2].c_str());
  std::printf("  atoms: %d  extract: %.3fs  union: %.3fs  (threads=%d)\n",
              stats->atoms_written, stats->extract_seconds, stats->union_seconds,
              flags.threads);
  return 0;
}

int CmdInspect(const Flags& flags) {
  if (flags.positional.size() != 1) {
    return Usage();
  }
  Result<UcpMeta> meta = ReadUcpMeta(flags.positional[0]);
  if (!meta.ok()) {
    return Fail(meta.status());
  }
  std::printf("UCP checkpoint: %s\n", flags.positional[0].c_str());
  std::printf("  arch: %s  layers: %d  hidden: %d  heads: %d/%d  experts: %d\n",
              ArchKindName(meta->model.arch), meta->model.num_layers, meta->model.hidden,
              meta->model.num_heads, meta->model.num_kv_heads, meta->model.num_experts);
  std::printf("  source strategy: %s  iteration: %lld  global batch: %d\n",
              meta->source_strategy.ToString().c_str(),
              static_cast<long long>(meta->iteration), meta->global_batch);
  std::printf("  atoms (%zu):\n", meta->atom_names.size());
  int64_t total_numel = 0;
  for (const std::string& name : meta->atom_names) {
    Result<Shape> shape = ReadAtomShape(flags.positional[0], name);
    if (!shape.ok()) {
      return Fail(shape.status());
    }
    total_numel += ShapeNumel(*shape);
    std::printf("    %-70s %s\n", name.c_str(), ShapeToString(*shape).c_str());
  }
  std::printf("  total parameters: %lld (x3 fp32 states on disk)\n",
              static_cast<long long>(total_numel));
  return 0;
}

int CmdInspectCkpt(Flags flags) {
  Status open_error = OkStatus();
  std::shared_ptr<Store> store = OpenToolStore(flags, &open_error);
  if (store == nullptr) {
    return open_error.ok() ? Usage() : Fail(open_error);
  }
  if (flags.positional.size() != 1) {
    return Usage();
  }
  const std::string& tag = flags.positional[0];
  Result<CheckpointMeta> meta = ReadCheckpointMeta(*store, tag);
  if (!meta.ok()) {
    return Fail(meta.status());
  }
  std::printf("native checkpoint: %s/%s\n", store->Describe().c_str(), tag.c_str());
  std::printf("  arch: %s  strategy: %s  iteration: %lld  world size: %d\n",
              ArchKindName(meta->model.arch), meta->strategy.ToString().c_str(),
              static_cast<long long>(meta->iteration), meta->strategy.world_size());
  Result<std::vector<std::string>> files = store->List(tag);
  if (!files.ok()) {
    return Fail(files.status());
  }
  std::printf("  shard files (%zu):\n", files->size());
  for (const std::string& file : *files) {
    std::printf("    %s\n", file.c_str());
  }
  // An incremental tag stages its shard payloads as chunk objects; the manifest is the
  // tag's real contents, so print it (a damaged manifest is an error, not a silent skip).
  if (std::find(files->begin(), files->end(), kChunkManifestName) != files->end()) {
    Result<std::string> text = store->ReadSmallFile(JoinRel(tag, kChunkManifestName));
    if (!text.ok()) {
      return Fail(text.status());
    }
    Result<ChunkManifest> manifest = ParseChunkManifest(*text);
    if (!manifest.ok()) {
      return Fail(manifest.status());
    }
    PrintChunkManifest(*manifest);
  }
  return 0;
}

// Every tag in the store (all job namespaces), its commit status, and the latest pointers.
int CmdTags(Flags flags) {
  Status open_error = OkStatus();
  std::shared_ptr<Store> store = OpenToolStore(flags, &open_error);
  if (store == nullptr) {
    return open_error.ok() ? Usage() : Fail(open_error);
  }
  if (!flags.positional.empty()) {
    return Usage();
  }
  Result<std::vector<std::string>> entries = store->List("");
  if (!entries.ok()) {
    return Fail(entries.status());
  }
  struct TagRow {
    std::string job;
    int64_t iteration = 0;
    std::string name;
  };
  std::vector<TagRow> rows;
  for (const std::string& name : *entries) {
    TagRow row;
    if (ParseTagName(name, &row.job, &row.iteration)) {
      row.name = name;
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const TagRow& a, const TagRow& b) {
    return std::tie(a.job, a.iteration) < std::tie(b.job, b.iteration);
  });
  std::printf("store: %s  (%zu tags)\n", store->Describe().c_str(), rows.size());
  for (const TagRow& row : rows) {
    std::printf("  %-40s %s\n", row.name.c_str(),
                IsTagComplete(*store, row.name) ? "committed" : "UNCOMMITTED");
  }
  for (const std::string& name : *entries) {
    if (name == "latest" || name.rfind("latest.", 0) == 0) {
      Result<std::string> target = store->ReadSmallFile(name);
      std::printf("  %-40s -> %s\n", name.c_str(),
                  target.ok() ? target->c_str() : "(unreadable)");
    }
  }
  return 0;
}

int CmdSpec(const Flags& flags) {
  if (flags.positional.size() != 2) {
    return Usage();
  }
  Result<CheckpointMeta> meta = ReadCheckpointMeta(flags.positional[0], flags.positional[1]);
  if (!meta.ok()) {
    return Fail(meta.status());
  }
  PatternLibrary library = PatternLibrary::ForStrategy(meta->model, meta->strategy);
  std::printf("%s", library.ToSpec().c_str());
  return 0;
}

int CmdPlan(const Flags& flags) {
  if (flags.positional.size() < 6 || flags.positional.size() > 7) {
    return Usage();
  }
  Result<UcpMeta> meta = ReadUcpMeta(flags.positional[0]);
  if (!meta.ok()) {
    return Fail(meta.status());
  }
  ParallelConfig target;
  int rank = 0;
  if (!ParseInt(flags.positional[1], &target.tp) ||
      !ParseInt(flags.positional[2], &target.pp) ||
      !ParseInt(flags.positional[3], &target.dp) ||
      !ParseInt(flags.positional[4], &target.sp) ||
      !ParseInt(flags.positional[5], &target.zero_stage) ||
      (flags.positional.size() == 7 && !ParseInt(flags.positional[6], &rank))) {
    std::fprintf(stderr, "plan arguments after <ucp_dir> must be integers\n");
    return Usage();
  }
  if (rank < 0 || rank >= target.world_size()) {
    return Fail(InvalidArgumentError("rank out of range for target grid"));
  }
  World world(target.world_size());
  Topology topo(&world, target);
  RankLoadPlan plan = GenUcpMetadata(meta->model, target, topo.CoordOf(rank));
  std::printf("%s\n", plan.ToJson().Dump(2).c_str());
  return 0;
}

int CmdValidate(const Flags& flags, bool native) {
  if (flags.positional.size() != (native ? 2u : 1u)) {
    return Usage();
  }
  Result<ValidationReport> report =
      native ? ValidateNativeCheckpoint(flags.positional[0], flags.positional[1])
             : ValidateUcpCheckpoint(flags.positional[0]);
  if (!report.ok()) {
    return Fail(report.status());
  }
  std::printf("%s\n", report->ToString().c_str());
  return report->ok() ? 0 : 1;
}

int CmdFsck(const Flags& flags) {
  if (flags.positional.size() != 1) {
    return Usage();
  }
  FsckOptions options;
  options.quarantine = flags.quarantine;
  options.fast = flags.fast;
  options.num_threads = flags.threads;
  Result<FsckReport> report = Fsck(flags.positional[0], options);
  if (!report.ok()) {
    return Fail(report.status());
  }
  std::printf("%s", report->ToString().c_str());
  if (flags.quarantine) {
    std::printf("%s\n", report->QuarantineSummary().c_str());
  }
  const int code = report->ExitCode(flags.quarantine);
  if (code == 2) {
    // Unrecoverable damage: leave a flight-recorder dossier beside the wreckage so the
    // operator sees what this process observed (per-file verdicts live in the report; the
    // dossier adds trace spans and io/retry counters).
    std::string trace_path;
    std::string dump_err;
    if (obs::DumpFlightRecord(flags.positional[0], "fsck", &trace_path, &dump_err)) {
      std::fprintf(stderr, "flight record dumped to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "flight record dump failed: %s\n", dump_err.c_str());
    }
  }
  return code;
}

// Header-only: StatTensor parses the v3 metadata prefix without touching payload bytes, so
// this stays fast even on checkpoints too large to re-read.
int CmdStat(const Flags& flags) {
  if (flags.positional.size() != 1) {
    return Usage();
  }
  const std::string& ucp_dir = flags.positional[0];
  // A native incremental tag directory is not a UCP dir, but its chunk manifest is the
  // header-level summary `stat` exists for — print it and stop.
  if (FileExists(PathJoin(ucp_dir, kChunkManifestName))) {
    Result<std::string> text = ReadFileToString(PathJoin(ucp_dir, kChunkManifestName));
    if (!text.ok()) {
      return Fail(text.status());
    }
    Result<ChunkManifest> manifest = ParseChunkManifest(*text);
    if (!manifest.ok()) {
      return Fail(manifest.status());
    }
    std::printf("native incremental tag: %s  (%llu logical bytes)\n", ucp_dir.c_str(),
                static_cast<unsigned long long>(manifest->LogicalBytes()));
    PrintChunkManifest(*manifest);
    return 0;
  }
  Result<UcpMeta> meta = ReadUcpMeta(ucp_dir);
  if (!meta.ok()) {
    return Fail(meta.status());
  }
  std::printf("UCP checkpoint: %s  (%zu atoms, iteration %lld)\n", ucp_dir.c_str(),
              meta->atom_names.size(), static_cast<long long>(meta->iteration));
  std::printf("  %-70s %-16s %6s %12s %7s\n", "atom", "shape", "ver", "bytes/state",
              "chunks");
  uint64_t total_bytes = 0;
  uint64_t total_chunks = 0;
  constexpr const char* kStates[3] = {"fp32", "exp_avg", "exp_avg_sq"};
  for (const std::string& name : meta->atom_names) {
    const std::string dir = AtomDir(ucp_dir, name);
    TensorFileInfo first;
    uint64_t atom_bytes = 0;
    uint64_t atom_chunks = 0;
    for (int s = 0; s < 3; ++s) {
      Result<TensorFileInfo> info = StatTensor(PathJoin(dir, kStates[s]));
      if (!info.ok()) {
        return Fail(info.status());
      }
      if (s == 0) {
        first = *info;
      }
      atom_bytes += info->payload_bytes;
      atom_chunks += info->num_chunks;
    }
    total_bytes += atom_bytes;
    total_chunks += atom_chunks;
    std::printf("  %-70s %-16s %6d %12llu %7llu\n", name.c_str(),
                ShapeToString(first.shape).c_str(), first.format_version,
                static_cast<unsigned long long>(first.payload_bytes),
                static_cast<unsigned long long>(atom_chunks));
  }
  std::printf("  total: %llu payload bytes across %llu CRC chunks (3 states per atom)\n",
              static_cast<unsigned long long>(total_bytes),
              static_cast<unsigned long long>(total_chunks));
  return 0;
}

// Per-tag space accounting: logical bytes (what readers see) vs physical bytes (what the
// tag added to the store). Chunk objects are attributed to the first tag — in (job,
// iteration) order — whose manifest references them, so a warm incremental save's
// physical column is exactly the dirty bytes it flushed. Works over either backend:
// manifests come via ReadSmallFile, chunk object sizes via OpenRead on the object path.
int CmdDu(Flags flags) {
  Status open_error = OkStatus();
  std::shared_ptr<Store> store = OpenToolStore(flags, &open_error);
  if (store == nullptr) {
    return open_error.ok() ? Usage() : Fail(open_error);
  }
  if (!flags.positional.empty()) {
    return Usage();
  }
  Result<std::vector<std::string>> entries = store->List("");
  if (!entries.ok()) {
    return Fail(entries.status());
  }
  struct TagRow {
    std::string job;
    int64_t iteration = 0;
    std::string name;
  };
  std::vector<TagRow> rows;
  for (const std::string& name : *entries) {
    TagRow row;
    if (ParseTagName(name, &row.job, &row.iteration)) {
      row.name = name;
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const TagRow& a, const TagRow& b) {
    return std::tie(a.job, a.iteration) < std::tie(b.job, b.iteration);
  });

  std::printf("store: %s  (%zu tags)\n", store->Describe().c_str(), rows.size());
  std::printf("  %-36s %-11s %14s %14s %14s %7s\n", "tag", "status", "logical", "physical",
              "dedup_saved", "comp");
  std::set<uint64_t> attributed;               // digests owned by an earlier row
  std::map<uint64_t, uint64_t> object_sizes;   // digest -> stored object size (cache)
  uint64_t sum_logical = 0;
  uint64_t sum_physical = 0;
  int dangling_total = 0;
  for (const TagRow& row : rows) {
    uint64_t logical = 0;    // bytes a reader of the tag sees (shards + metadata)
    uint64_t physical = 0;   // bytes this tag added: its files + first-referenced chunks
    uint64_t reused_raw = 0; // manifest bytes resolved to already-attributed chunks
    uint64_t owned_raw = 0;  // raw bytes of the chunk objects this tag introduced
    uint64_t owned_stored = 0;  // their on-disk (possibly compressed) size
    int dangling = 0;
    Result<std::vector<std::string>> files = store->List(row.name);
    if (!files.ok()) {
      std::printf("  %-36s unreadable: %s\n", row.name.c_str(),
                  StatusCodeName(files.status().code()));
      continue;
    }
    std::optional<ChunkManifest> manifest;
    for (const std::string& file : *files) {
      if (file == kChunkManifestName) {
        Result<std::string> text = store->ReadSmallFile(JoinRel(row.name, file));
        if (text.ok()) {
          Result<ChunkManifest> parsed = ParseChunkManifest(*text);
          if (parsed.ok()) {
            manifest = std::move(*parsed);
          }
        }
      }
      Result<std::unique_ptr<ByteSource>> src = store->OpenRead(JoinRel(row.name, file));
      if (!src.ok()) {
        continue;  // e.g. a subdirectory entry
      }
      logical += (*src)->size();
      physical += (*src)->size();
    }
    if (manifest.has_value()) {
      const uint64_t chunk_bytes = manifest->chunk_bytes;
      for (const ChunkManifestEntry& entry : manifest->files) {
        logical += entry.size;
        for (size_t i = 0; i < entry.chunks.size(); ++i) {
          const uint64_t digest = entry.chunks[i];
          const uint64_t span =
              std::min<uint64_t>(chunk_bytes, entry.size - static_cast<uint64_t>(i) * chunk_bytes);
          if (!attributed.insert(digest).second) {
            reused_raw += span;
            continue;
          }
          owned_raw += span;
          auto cached = object_sizes.find(digest);
          uint64_t stored = 0;
          if (cached != object_sizes.end()) {
            stored = cached->second;
          } else {
            Result<std::unique_ptr<ByteSource>> object =
                store->OpenRead(ChunkObjectRel(digest));
            if (object.ok()) {
              stored = (*object)->size();
            } else {
              ++dangling;  // referenced but absent: a dangling reference (fsck's domain)
            }
            object_sizes[digest] = stored;
          }
          owned_stored += stored;
          physical += stored;
        }
      }
    }
    sum_logical += logical;
    sum_physical += physical;
    dangling_total += dangling;
    char comp[16] = "-";
    if (owned_raw > 0) {
      std::snprintf(comp, sizeof(comp), "%5.1f%%",
                    100.0 * (1.0 - static_cast<double>(owned_stored) /
                                       static_cast<double>(owned_raw)));
    }
    std::printf("  %-36s %-11s %14llu %14llu %14llu %7s%s\n", row.name.c_str(),
                IsTagComplete(*store, row.name) ? "committed" : "UNCOMMITTED",
                static_cast<unsigned long long>(logical),
                static_cast<unsigned long long>(physical),
                static_cast<unsigned long long>(reused_raw), comp,
                manifest.has_value() ? "" : "  (full)");
    if (dangling > 0) {
      std::printf("    WARNING: %d dangling chunk reference(s) — run fsck\n", dangling);
    }
  }
  std::printf("  %-36s %-11s %14llu %14llu\n", "total", "",
              static_cast<unsigned long long>(sum_logical),
              static_cast<unsigned long long>(sum_physical));
  if (sum_logical > 0) {
    std::printf("  saved %llu bytes (%.1f%% of logical) via dedup + compression\n",
                static_cast<unsigned long long>(sum_logical - std::min(sum_physical, sum_logical)),
                100.0 * (1.0 - static_cast<double>(std::min(sum_physical, sum_logical)) /
                                   static_cast<double>(sum_logical)));
  }
  Result<std::vector<std::string>> fans = store->List(kChunkDirName);
  if (fans.ok()) {
    size_t objects = 0;
    for (const std::string& fan : *fans) {
      Result<std::vector<std::string>> names = store->List(JoinRel(kChunkDirName, fan));
      if (names.ok()) {
        objects += names->size();
      }
    }
    std::printf("  chunk index: %zu object(s), %zu referenced by the tags above\n", objects,
                attributed.size());
  }
  return dangling_total > 0 ? 1 : 0;
}

int CmdPrune(const Flags& flags) {
  if (flags.positional.size() != 2) {
    return Usage();
  }
  int keep = 0;
  if (!ParseInt(flags.positional[1], &keep)) {
    std::fprintf(stderr, "bad keep_last: %s\n", flags.positional[1].c_str());
    return Usage();
  }
  Status status = PruneCheckpoints(flags.positional[0], keep);
  if (!status.ok()) {
    return Fail(status);
  }
  Result<std::vector<std::string>> tags = ListCheckpointTags(flags.positional[0]);
  if (!tags.ok()) {
    return Fail(tags.status());
  }
  std::printf("kept %zu checkpoint(s):\n", tags->size());
  for (const std::string& tag : *tags) {
    std::printf("  %s\n", tag.c_str());
  }
  return 0;
}

// Retention for steady-state training: keep the newest `keep_last` *committed* tags (plus
// whatever `latest` names), leave uncommitted tags and `.staging` debris to fsck / the
// next save. `prune` is the blunter tool that counts every tag.
int CmdGc(Flags flags) {
  Status open_error = OkStatus();
  std::shared_ptr<Store> store = OpenToolStore(flags, &open_error);
  if (store == nullptr) {
    return open_error.ok() ? Usage() : Fail(open_error);
  }
  if (flags.positional.size() != 1) {
    return Usage();
  }
  int keep = 0;
  if (!ParseInt(flags.positional[0], &keep)) {
    std::fprintf(stderr, "bad keep_last: %s\n", flags.positional[0].c_str());
    return Usage();
  }
  Result<GcReport> report = store->Gc(/*job=*/"", keep, flags.dry_run);
  if (!report.ok()) {
    return Fail(report.status());
  }
  if (flags.dry_run) {
    std::printf("(dry run — nothing deleted)\n");
  }
  std::printf("%s", report->ToString().c_str());
  return 0;
}

int Main(int argc, char** argv);

// Wraps another subcommand and prints the metrics registry once it returns, so a CLI run
// (convert, fsck, ...) ends with the counters/histograms it produced. Metrics are
// process-local; `ucp_tool metrics` alone prints a fresh process's (near-empty) registry.
int CmdMetrics(int argc, char** argv) {
  int code = 0;
  if (argc >= 3) {
    code = Main(argc - 1, argv + 1);
  }
  std::printf("%s", obs::DumpMetricsText().c_str());
  return code;
}

// `ucp_tool metrics --store ENDPOINT` — a live daemon's registry instead of this
// process's, fetched over the wire (v4 METRICS_DUMP; the same payload /metrics serves).
// Connects lease-less so the probe leaves no state behind on the server.
int CmdMetricsRemote(const Flags& flags) {
  if (!flags.positional.empty()) {
    return Usage();
  }
  RemoteStoreOptions options;
  options.lease_ttl_ms = 0;
  options.reconnect = false;
  Result<std::shared_ptr<RemoteStore>> store = RemoteStore::Connect(flags.store, options);
  if (!store.ok()) {
    return Fail(store.status());
  }
  Result<std::string> text = (*store)->MetricsDump(/*prometheus=*/false);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<std::string> prom = (*store)->MetricsDump(/*prometheus=*/true);
  if (!prom.ok()) {
    return Fail(prom.status());
  }
  std::printf("# metrics from %s (text)\n%s", flags.store.c_str(), text->c_str());
  std::printf("\n# metrics from %s (prometheus)\n%s", flags.store.c_str(), prom->c_str());
  return 0;
}

// Stitches a client trace export and a server trace export into one Chrome trace with
// cross-process flow arrows (src/obs/trace_merge.h has the merge semantics).
int CmdTraceMerge(const Flags& flags) {
  if (flags.positional.size() < 2 || flags.positional.size() > 3) {
    return Usage();
  }
  Result<std::string> client_text = ReadFileToString(flags.positional[0]);
  if (!client_text.ok()) {
    return Fail(client_text.status());
  }
  Result<std::string> server_text = ReadFileToString(flags.positional[1]);
  if (!server_text.ok()) {
    return Fail(server_text.status());
  }
  obs::TraceMergeStats stats;
  Result<std::string> merged = obs::MergeChromeTraces(*client_text, *server_text, &stats);
  if (!merged.ok()) {
    return Fail(merged.status());
  }
  if (flags.positional.size() == 3) {
    Status written = WriteFileAtomic(flags.positional[2], *merged);
    if (!written.ok()) {
      return Fail(written);
    }
    std::printf("merged %zu client + %zu server events (%zu flow links) -> %s\n",
                stats.client_events, stats.server_events, stats.flow_links,
                flags.positional[2].c_str());
  } else {
    std::printf("%s\n", merged->c_str());
    std::fprintf(stderr, "merged %zu client + %zu server events (%zu flow links)\n",
                 stats.client_events, stats.server_events, stats.flow_links);
  }
  return 0;
}

// Summarizes a Chrome trace JSON written by ExportChromeTraceJson (via --trace=FILE or the
// flight recorder): per-process event counts, then a per-span-name table sorted by total
// wall time. Parsing uses src/common/json — the same schema the obs tests validate.
int CmdTraceCat(const Flags& flags) {
  if (flags.positional.size() != 1) {
    return Usage();
  }
  Result<std::string> text = ReadFileToString(flags.positional[0]);
  if (!text.ok()) {
    return Fail(text.status());
  }
  Result<Json> parsed = Json::Parse(*text);
  if (!parsed.ok()) {
    return Fail(parsed.status());
  }
  Result<const JsonArray*> events = parsed->GetArray("traceEvents");
  if (!events.ok()) {
    return Fail(events.status());
  }

  struct SpanAgg {
    uint64_t count = 0;
    double total_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, SpanAgg> spans;
  std::map<int64_t, uint64_t> events_by_pid;   // spans + instants per process
  std::map<int64_t, std::string> pid_names;    // from "process_name" metadata
  uint64_t instants = 0;
  for (const Json& e : **events) {
    Result<std::string> ph = e.GetString("ph");
    Result<std::string> name = e.GetString("name");
    Result<int64_t> pid = e.GetInt("pid");
    if (!ph.ok() || !name.ok() || !pid.ok()) {
      return Fail(DataLossError("malformed trace event: " + e.Dump()));
    }
    if (*ph == "M") {
      if (*name == "process_name" && e.Has("args")) {
        Result<std::string> pname = e.AsObject().at("args").GetString("name");
        if (pname.ok()) {
          pid_names[*pid] = *pname;
        }
      }
      continue;
    }
    ++events_by_pid[*pid];
    if (*ph == "i") {
      ++instants;
      continue;
    }
    if (*ph != "X") {
      continue;  // forward-compatible: ignore phases we did not emit
    }
    Result<double> dur = e.GetDouble("dur");
    if (!dur.ok()) {
      return Fail(DataLossError("complete event without dur: " + e.Dump()));
    }
    SpanAgg& agg = spans[*name];
    agg.count += 1;
    agg.total_us += *dur;
    agg.max_us = std::max(agg.max_us, *dur);
  }

  std::printf("trace: %s\n", flags.positional[0].c_str());
  std::printf("  processes (%zu):\n", events_by_pid.size());
  for (const auto& [pid, count] : events_by_pid) {
    auto named = pid_names.find(pid);
    std::printf("    %-12s %8llu events\n",
                named != pid_names.end() ? named->second.c_str()
                                         : std::to_string(pid).c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("  instants: %llu\n", static_cast<unsigned long long>(instants));
  std::vector<std::pair<std::string, SpanAgg>> rows(spans.begin(), spans.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::printf("  spans by total wall time:\n");
  std::printf("    %-40s %8s %12s %12s %12s\n", "name", "count", "total_ms", "mean_us",
              "max_us");
  for (const auto& [name, agg] : rows) {
    std::printf("    %-40s %8llu %12.3f %12.1f %12.1f\n", name.c_str(),
                static_cast<unsigned long long>(agg.count), agg.total_us / 1e3,
                agg.total_us / static_cast<double>(agg.count), agg.max_us);
  }
  return 0;
}

// Replays a soak failure log and diffs the regenerated JSONL against the input. The soak
// driver's determinism contract (src/soak/driver.h) is what makes a byte-level diff the
// right check: any divergence means the recorded failure is not reproducible from its log.
int CmdSoakReplay(const Flags& flags) {
  if (flags.positional.empty() || flags.positional.size() > 2) {
    return Usage();
  }
  Result<std::string> original = ReadFileToString(flags.positional[0]);
  if (!original.ok()) {
    return Fail(original.status());
  }
  std::string dir;
  if (flags.positional.size() == 2) {
    dir = flags.positional[1];
  } else {
    Result<std::string> temp = MakeTempDir("ucp_soak_replay");
    if (!temp.ok()) {
      return Fail(temp.status());
    }
    dir = *temp;
  }
  Result<SoakRunReport> replay = ReplaySoakLog(*original, dir);
  if (!replay.ok()) {
    return Fail(replay.status());
  }
  std::printf(
      "replayed %d events in %s: %lld iterations, %d invariant checks, %d kills, "
      "%d fs faults, %zu violations\n",
      replay->events_run, dir.c_str(),
      static_cast<long long>(replay->iterations_trained), replay->invariant_checks,
      replay->kills_fired, replay->fs_faults_fired, replay->violations.size());
  for (const std::string& violation : replay->violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
  const std::string replayed_text = replay->LogText();
  if (replayed_text != *original) {
    // Point at the first divergent line: that is where determinism broke.
    auto split_lines = [](const std::string& text) {
      std::vector<std::string> lines;
      size_t start = 0;
      while (start < text.size()) {
        size_t end = text.find('\n', start);
        if (end == std::string::npos) end = text.size();
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
      }
      return lines;
    };
    const std::vector<std::string> a = split_lines(*original);
    const std::vector<std::string> b = split_lines(replayed_text);
    for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
      const std::string* left = i < a.size() ? &a[i] : nullptr;
      const std::string* right = i < b.size() ? &b[i] : nullptr;
      if (left == nullptr || right == nullptr || *left != *right) {
        std::fprintf(stderr, "replay DIVERGED at line %zu:\n  recorded: %s\n  replayed: %s\n",
                     i + 1, left != nullptr ? left->c_str() : "<missing>",
                     right != nullptr ? right->c_str() : "<missing>");
        break;
      }
    }
    return 1;
  }
  std::printf("replay is byte-identical to the recorded log\n");
  return replay->violations.empty() ? 0 : 1;
}

// `ucp_tool ping --store ENDPOINT` — the first thing to run when saves hang: proves the
// daemon is reachable, shows the negotiated wire version, the round-trip time, and (v3)
// the server's session/lease/staged-bytes counters including drain state. Connects
// lease-less (ttl 0) so the probe leaves no state behind on the server.
int CmdPing(const Flags& flags) {
  if (flags.store.empty() || !flags.positional.empty()) {
    return Usage();
  }
  RemoteStoreOptions options;
  options.lease_ttl_ms = 0;
  options.reconnect = false;
  const auto dial_start = std::chrono::steady_clock::now();
  Result<std::shared_ptr<RemoteStore>> store = RemoteStore::Connect(flags.store, options);
  if (!store.ok()) {
    return Fail(store.status());
  }
  const auto ping_start = std::chrono::steady_clock::now();
  Status pinged = (*store)->Ping();
  const auto ping_end = std::chrono::steady_clock::now();
  if (!pinged.ok()) {
    return Fail(pinged);
  }
  const double connect_ms =
      std::chrono::duration<double, std::milli>(ping_start - dial_start).count();
  const double rtt_ms =
      std::chrono::duration<double, std::milli>(ping_end - ping_start).count();
  std::printf("%s: alive  wire v%u  connect %.2f ms  ping %.2f ms\n", flags.store.c_str(),
              (*store)->negotiated_version(), connect_ms, rtt_ms);
  Result<RemoteServerStat> stat = (*store)->ServerStat();
  if (stat.ok()) {
    std::printf("  sessions %u  named leases %u  staged %llu bytes%s\n", stat->sessions,
                stat->leases, static_cast<unsigned long long>(stat->staged_bytes),
                stat->draining ? "  DRAINING (refusing new sessions)" : "");
  } else if (stat.status().code() != StatusCode::kUnimplemented) {
    return Fail(stat.status());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help") {
    PrintUsage(stdout);
    return 0;
  }
  Flags flags = ParseFlags(argc, argv, 2);
  if (!flags.bad_flag.empty() && command != "metrics") {
    std::fprintf(stderr, "unknown or malformed flag: %s\n", flags.bad_flag.c_str());
    return Usage();
  }
  if (command == "convert") {
    return CmdConvert(flags, /*foreign=*/false);
  }
  if (command == "convert-foreign") {
    return CmdConvert(flags, /*foreign=*/true);
  }
  if (command == "inspect") {
    return CmdInspect(flags);
  }
  if (command == "inspect-ckpt") {
    return CmdInspectCkpt(flags);
  }
  if (command == "spec") {
    return CmdSpec(flags);
  }
  if (command == "plan") {
    return CmdPlan(flags);
  }
  if (command == "validate") {
    return CmdValidate(flags, /*native=*/false);
  }
  if (command == "validate-ckpt") {
    return CmdValidate(flags, /*native=*/true);
  }
  if (command == "fsck") {
    return CmdFsck(flags);
  }
  if (command == "stat") {
    return CmdStat(flags);
  }
  if (command == "du") {
    return CmdDu(flags);
  }
  if (command == "tags") {
    return CmdTags(flags);
  }
  if (command == "prune") {
    return CmdPrune(flags);
  }
  if (command == "gc") {
    return CmdGc(flags);
  }
  if (command == "ping") {
    return CmdPing(flags);
  }
  if (command == "metrics") {
    // `metrics --store X` alone reads a live daemon; with a nested subcommand, --store
    // belongs to that subcommand (`metrics tags --store X`) and the wrapper applies.
    if (!flags.store.empty() && flags.positional.empty()) {
      return CmdMetricsRemote(flags);
    }
    return CmdMetrics(argc, argv);
  }
  if (command == "trace-merge") {
    return CmdTraceMerge(flags);
  }
  if (command == "trace-cat") {
    return CmdTraceCat(flags);
  }
  if (command == "soak-replay") {
    return CmdSoakReplay(flags);
  }
  return Usage();
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) { return ucp::Main(argc, argv); }
