// ucp_serverd — the checkpoint store daemon.
//
//   ucp_serverd --root DIR [--listen unix:/path|tcp:host:port] [--http tcp:host:port]
//               [--max-staged-bytes N] [--max-sessions N]
//
// Serves the checkpoint store rooted at DIR to RemoteStore clients over the wire protocol
// (docs/store.md). `--http` additionally exposes plaintext GET /metrics and /healthz.
// SIGINT/SIGTERM shut the daemon down gracefully: the listener closes first, in-flight
// exchanges finish (sessions drain), and uncommitted staging is left on disk exactly as a
// crashed local save would leave it — fsck and the next save handle it.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <unistd.h>

#include "src/store/server.h"

namespace ucp {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ucp_serverd --root DIR [--listen unix:/path|tcp:host:port]\n"
               "              [--http tcp:host:port] [--max-staged-bytes N]\n"
               "              [--max-sessions N] [--lease-ttl-ms N] [--no-journal]\n"
               "              [--no-drain] [--no-flightrec]\n");
  return 2;
}

// Signal flag -> the main thread's poll loop; handlers must stay async-signal-safe.
volatile std::sig_atomic_t g_stop = 0;

void HandleStop(int) { g_stop = 1; }

bool ParseU64(const char* text, uint64_t* out) {
  if (text == nullptr || *text == '\0') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

int Main(int argc, char** argv) {
  StoreServerOptions options;
  options.listen.clear();
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (std::strcmp(arg, "--root") == 0) {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.root = v;
    } else if (std::strcmp(arg, "--listen") == 0) {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.listen = v;
    } else if (std::strcmp(arg, "--http") == 0) {
      const char* v = value();
      if (v == nullptr) return Usage();
      options.http_listen = v;
    } else if (std::strcmp(arg, "--max-staged-bytes") == 0) {
      if (!ParseU64(value(), &options.max_staged_bytes)) return Usage();
    } else if (std::strcmp(arg, "--max-sessions") == 0) {
      uint64_t v = 0;
      if (!ParseU64(value(), &v) || v == 0) return Usage();
      options.max_sessions = static_cast<int>(v);
    } else if (std::strcmp(arg, "--lease-ttl-ms") == 0) {
      // Max TTL a SESSION_OPEN may bind (longer requests are clamped). 0 disables leases:
      // every session releases its staged state the moment the connection dies.
      uint64_t v = 0;
      if (!ParseU64(value(), &v)) return Usage();
      options.max_lease_ttl_ms = static_cast<uint32_t>(v);
    } else if (std::strcmp(arg, "--no-journal") == 0) {
      options.journal = false;
    } else if (std::strcmp(arg, "--no-drain") == 0) {
      options.drain_on_shutdown = false;
    } else if (std::strcmp(arg, "--no-flightrec") == 0) {
      // Anomalies (lease expiry, commit failure, admission rejection, journal adoption)
      // normally leave a flight-record dump under <root>/flightrec/.
      options.anomaly_flightrec = false;
    } else if (std::strcmp(arg, "help") == 0 || std::strcmp(arg, "--help") == 0) {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return Usage();
    }
  }
  if (options.root.empty()) {
    std::fprintf(stderr, "--root is required\n");
    return Usage();
  }
  if (options.listen.empty()) {
    options.listen = "unix:" + options.root + "/ucp_serverd.sock";
  }

  const std::string root = options.root;
  Result<std::unique_ptr<StoreServer>> server = StoreServer::Start(std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("ucp_serverd serving %s on %s", root.c_str(), (*server)->endpoint().c_str());
  if (!(*server)->http_endpoint().empty()) {
    std::printf("  (http %s)", (*server)->http_endpoint().c_str());
  }
  std::printf("\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleStop);
  std::signal(SIGTERM, HandleStop);
  while (g_stop == 0) {
    // The accept/session threads do all the work; this thread only waits for a signal.
    ::usleep(200 * 1000);
  }
  std::printf("ucp_serverd shutting down (%d active session(s))\n",
              (*server)->active_sessions());
  (*server)->Shutdown();
  return 0;
}

}  // namespace
}  // namespace ucp

int main(int argc, char** argv) { return ucp::Main(argc, argv); }
